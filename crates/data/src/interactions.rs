//! CSR interaction store — the PU-dataset of the paper.
//!
//! For each user `u` the store holds the sorted set of interacted items
//! `I⁺ᵤ`; everything else is the unlabeled pool `I⁻ᵤ` that negative sampling
//! draws from. The CSR layout gives cache-friendly iteration over a user's
//! positives and `O(log |I⁺ᵤ|)` membership tests, both of which sit in the
//! trainer's hot loop.
//!
//! The two CSR arrays live behind [`crate::storage::U32Buf`], so an
//! `Interactions` can either own its arrays (every mutation/construction
//! path) or borrow them zero-copy from a memory-mapped file
//! ([`crate::serialize::map_interactions`]). Every accessor returns plain
//! slices, so samplers, trainers and the serve engine are oblivious to the
//! backing store.

use crate::storage::U32Buf;
use crate::{DataError, Result};

/// Immutable user→item interaction matrix in CSR form.
///
/// Items within each user row are sorted ascending and deduplicated.
#[derive(Debug, Clone)]
pub struct Interactions {
    n_users: u32,
    n_items: u32,
    /// `offsets.len() == n_users + 1`; row `u` is `items[offsets[u]..offsets[u+1]]`.
    offsets: U32Buf,
    items: U32Buf,
}

impl PartialEq for Interactions {
    fn eq(&self, other: &Self) -> bool {
        self.n_users == other.n_users
            && self.n_items == other.n_items
            && self.offsets.as_slice() == other.offsets.as_slice()
            && self.items.as_slice() == other.items.as_slice()
    }
}

impl Eq for Interactions {}

/// Validates every CSR invariant over raw arrays: offsets shape and
/// monotonicity, strictly ascending in-range rows. Shared by the owned
/// and the zero-copy construction paths so mapped data is held to exactly
/// the same standard as decoded data.
pub(crate) fn validate_csr(
    n_users: u32,
    n_items: u32,
    offsets: &[u32],
    items: &[u32],
) -> Result<()> {
    if offsets.len() != n_users as usize + 1 {
        return Err(DataError::Invalid(format!(
            "offsets length {} does not match n_users {} + 1",
            offsets.len(),
            n_users
        )));
    }
    if offsets[0] != 0 || *offsets.last().expect("non-empty") as usize != items.len() {
        return Err(DataError::Invalid(
            "offsets must start at 0 and end at items.len()".into(),
        ));
    }
    for w in offsets.windows(2) {
        if w[0] > w[1] {
            return Err(DataError::Invalid("offsets must be non-decreasing".into()));
        }
        let row = &items[w[0] as usize..w[1] as usize];
        if !row.windows(2).all(|p| p[0] < p[1]) {
            return Err(DataError::Invalid(
                "row items must be strictly ascending".into(),
            ));
        }
        if row.iter().any(|&i| i >= n_items) {
            return Err(DataError::Invalid("item id out of range".into()));
        }
    }
    Ok(())
}

impl Interactions {
    /// Builds from raw `(user, item)` pairs; duplicates are collapsed.
    ///
    /// `n_users`/`n_items` set the id space; any pair referencing an id out
    /// of range is an error.
    pub fn from_pairs(n_users: u32, n_items: u32, pairs: &[(u32, u32)]) -> Result<Self> {
        let mut builder = InteractionsBuilder::new(n_users, n_items);
        for &(u, i) in pairs {
            builder.push(u, i)?;
        }
        builder.build()
    }

    /// Number of users in the id space (including users with no interactions).
    pub fn n_users(&self) -> u32 {
        self.n_users
    }

    /// Number of items in the id space.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Total number of stored interactions (the paper's `N` in Eq. 17 when
    /// called on the training set).
    pub fn len(&self) -> usize {
        self.items.as_slice().len()
    }

    /// True when no interactions are stored.
    pub fn is_empty(&self) -> bool {
        self.items.as_slice().is_empty()
    }

    /// Whether the CSR arrays borrow from a memory-mapped file rather
    /// than owned heap memory.
    pub fn is_mapped(&self) -> bool {
        self.offsets.is_mapped() || self.items.is_mapped()
    }

    /// The sorted item slice of user `u` (`I⁺ᵤ`).
    pub fn items_of(&self, u: u32) -> &[u32] {
        debug_assert!(u < self.n_users, "user id out of range");
        let offsets = self.offsets.as_slice();
        let lo = offsets[u as usize] as usize;
        let hi = offsets[u as usize + 1] as usize;
        &self.items.as_slice()[lo..hi]
    }

    /// Degree of user `u` (number of positives).
    pub fn degree(&self, u: u32) -> usize {
        self.items_of(u).len()
    }

    /// Whether `(u, i)` is an observed interaction — `O(log deg(u))`.
    pub fn contains(&self, u: u32, i: u32) -> bool {
        self.items_of(u).binary_search(&i).is_ok()
    }

    /// Number of un-interacted items of `u` (`|I⁻ᵤ|`).
    pub fn n_negatives(&self, u: u32) -> usize {
        self.n_items as usize - self.degree(u)
    }

    /// Iterates all `(user, item)` pairs in row order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n_users).flat_map(move |u| self.items_of(u).iter().map(move |&i| (u, i)))
    }

    /// Per-item interaction counts (`popₗ` of Eq. 17).
    pub fn item_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_items as usize];
        for &i in self.items.as_slice() {
            counts[i as usize] += 1;
        }
        counts
    }

    /// Users with at least one interaction.
    pub fn active_users(&self) -> Vec<u32> {
        (0..self.n_users).filter(|&u| self.degree(u) > 0).collect()
    }

    /// Raw CSR parts `(n_users, n_items, offsets, items)`, for serialization
    /// and for the LightGCN adjacency builder.
    pub fn csr_parts(&self) -> (u32, u32, &[u32], &[u32]) {
        (
            self.n_users,
            self.n_items,
            self.offsets.as_slice(),
            self.items.as_slice(),
        )
    }

    /// Rebuilds from CSR parts, validating every invariant. The inverse of
    /// [`Interactions::csr_parts`].
    pub fn from_csr_parts(
        n_users: u32,
        n_items: u32,
        offsets: Vec<u32>,
        items: Vec<u32>,
    ) -> Result<Self> {
        validate_csr(n_users, n_items, &offsets, &items)?;
        Ok(Self {
            n_users,
            n_items,
            offsets: offsets.into(),
            items: items.into(),
        })
    }

    /// Builds from pre-validated-shape buffers (owned **or** mapped),
    /// running the same invariant validation as
    /// [`Interactions::from_csr_parts`]. Zero-copy loaders use this to
    /// wrap views into a shared [`crate::storage::Storage`].
    pub fn from_csr_views(
        n_users: u32,
        n_items: u32,
        offsets: U32Buf,
        items: U32Buf,
    ) -> Result<Self> {
        validate_csr(n_users, n_items, offsets.as_slice(), items.as_slice())?;
        Ok(Self {
            n_users,
            n_items,
            offsets,
            items,
        })
    }

    /// Merges two interaction sets over the same id space (used to rebuild
    /// the full dataset from a train/test split, e.g. for Fig. 1 labeling).
    pub fn union(&self, other: &Interactions) -> Result<Interactions> {
        if self.n_users != other.n_users || self.n_items != other.n_items {
            return Err(DataError::Invalid("union: id spaces differ".into()));
        }
        let mut builder = InteractionsBuilder::new(self.n_users, self.n_items);
        for (u, i) in self.iter_pairs().chain(other.iter_pairs()) {
            builder.push(u, i)?;
        }
        builder.build()
    }
}

/// Incremental builder for [`Interactions`].
#[derive(Debug, Clone)]
pub struct InteractionsBuilder {
    n_users: u32,
    n_items: u32,
    pairs: Vec<(u32, u32)>,
}

impl InteractionsBuilder {
    /// Starts an empty builder over the given id space.
    pub fn new(n_users: u32, n_items: u32) -> Self {
        Self {
            n_users,
            n_items,
            pairs: Vec::new(),
        }
    }

    /// Pre-allocates capacity for `n` pairs.
    pub fn with_capacity(n_users: u32, n_items: u32, n: usize) -> Self {
        Self {
            n_users,
            n_items,
            pairs: Vec::with_capacity(n),
        }
    }

    /// Adds one `(user, item)` pair; range-checked.
    pub fn push(&mut self, u: u32, i: u32) -> Result<()> {
        if u >= self.n_users {
            return Err(DataError::Invalid(format!(
                "user id {u} out of range (n_users = {})",
                self.n_users
            )));
        }
        if i >= self.n_items {
            return Err(DataError::Invalid(format!(
                "item id {i} out of range (n_items = {})",
                self.n_items
            )));
        }
        self.pairs.push((u, i));
        Ok(())
    }

    /// Number of pairs pushed so far (before dedup).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs were pushed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Sorts, deduplicates and freezes into an [`Interactions`].
    pub fn build(mut self) -> Result<Interactions> {
        self.pairs.sort_unstable();
        self.pairs.dedup();
        let mut offsets = Vec::with_capacity(self.n_users as usize + 1);
        let mut items = Vec::with_capacity(self.pairs.len());
        offsets.push(0u32);
        let mut cursor = 0usize;
        for u in 0..self.n_users {
            while cursor < self.pairs.len() && self.pairs[cursor].0 == u {
                items.push(self.pairs[cursor].1);
                cursor += 1;
            }
            offsets.push(items.len() as u32);
        }
        debug_assert_eq!(cursor, self.pairs.len());
        Ok(Interactions {
            n_users: self.n_users,
            n_items: self.n_items,
            offsets: offsets.into(),
            items: items.into(),
        })
    }

    /// Builds a CSR **directly from an in-order row stream** — the
    /// constant-overhead path of the streamed synthetic generator: no
    /// global pair buffer, no `O(N log N)` sort; memory is exactly the
    /// output CSR.
    ///
    /// `rows` yields `(user, items)` with users strictly ascending (users
    /// absent from the stream get empty rows) and each row's items sorted
    /// strictly ascending; violations and out-of-range ids are typed
    /// errors, as is a total interaction count that would overflow the
    /// `u32` offset space.
    ///
    /// ```
    /// use bns_data::{Interactions, InteractionsBuilder};
    ///
    /// let rows: Vec<(u32, Vec<u32>)> = vec![(0, vec![1, 3]), (2, vec![0])];
    /// let x = InteractionsBuilder::from_stream(
    ///     3,
    ///     4,
    ///     rows.iter().map(|(u, row)| Ok((*u, row.as_slice()))),
    /// )?;
    /// assert_eq!(x.items_of(0), &[1, 3]);
    /// assert!(x.items_of(1).is_empty());
    /// assert_eq!(x.items_of(2), &[0]);
    /// # Ok::<(), bns_data::DataError>(())
    /// ```
    pub fn from_stream<'a, I>(n_users: u32, n_items: u32, rows: I) -> Result<Interactions>
    where
        I: IntoIterator<Item = Result<(u32, &'a [u32])>>,
    {
        let mut stream = RowStreamBuilder::new(n_users, n_items);
        for row in rows {
            let (u, items) = row?;
            stream.push_row(u, items)?;
        }
        stream.finish()
    }
}

/// The push-style core behind [`InteractionsBuilder::from_stream`]: rows
/// arrive in ascending user order and are appended straight into the CSR
/// arrays. Generators that reuse a per-row scratch buffer drive this
/// directly to stay allocation-flat per row.
#[derive(Debug)]
pub struct RowStreamBuilder {
    n_users: u32,
    n_items: u32,
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl RowStreamBuilder {
    /// Starts an empty stream over the given id space.
    pub fn new(n_users: u32, n_items: u32) -> Self {
        let mut offsets = Vec::with_capacity(n_users as usize + 1);
        offsets.push(0);
        Self {
            n_users,
            n_items,
            offsets,
            items: Vec::new(),
        }
    }

    /// Pre-sizes the item array for an expected interaction total.
    pub fn reserve(&mut self, n: usize) {
        self.items.reserve(n);
    }

    /// Appends user `u`'s full row. `u` must be ≥ every previously pushed
    /// user + 1 (skipped users get empty rows); `row` must be strictly
    /// ascending and in item range.
    pub fn push_row(&mut self, u: u32, row: &[u32]) -> Result<()> {
        let next = self.offsets.len() as u32 - 1;
        if u < next || u >= self.n_users {
            return Err(DataError::Invalid(format!(
                "stream row for user {u} out of order or out of range (next expected ≥ {next}, n_users = {})",
                self.n_users
            )));
        }
        if !row.windows(2).all(|p| p[0] < p[1]) {
            return Err(DataError::Invalid(format!(
                "stream row for user {u} is not strictly ascending"
            )));
        }
        if row.last().is_some_and(|&i| i >= self.n_items) {
            return Err(DataError::Invalid(format!(
                "stream row for user {u} references an item ≥ n_items {}",
                self.n_items
            )));
        }
        if self.items.len() + row.len() > u32::MAX as usize {
            return Err(DataError::Invalid(
                "interaction count overflows the u32 CSR offset space".into(),
            ));
        }
        // Empty rows for users skipped by the stream.
        for _ in next..u {
            self.offsets.push(self.items.len() as u32);
        }
        self.items.extend_from_slice(row);
        self.offsets.push(self.items.len() as u32);
        Ok(())
    }

    /// Interactions pushed so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no interactions were pushed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Closes out trailing empty rows and freezes the CSR. Invariants
    /// were enforced row-by-row, so this cannot fail structurally — the
    /// debug re-validation documents the claim.
    pub fn finish(mut self) -> Result<Interactions> {
        while self.offsets.len() < self.n_users as usize + 1 {
            self.offsets.push(self.items.len() as u32);
        }
        debug_assert!(
            validate_csr(self.n_users, self.n_items, &self.offsets, &self.items).is_ok(),
            "row-stream invariants must imply CSR invariants"
        );
        Ok(Interactions {
            n_users: self.n_users,
            n_items: self.n_items,
            offsets: self.offsets.into(),
            items: self.items.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Interactions {
        Interactions::from_pairs(3, 5, &[(0, 1), (0, 3), (1, 0), (1, 1), (1, 4), (2, 2)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let x = sample();
        assert_eq!(x.n_users(), 3);
        assert_eq!(x.n_items(), 5);
        assert_eq!(x.len(), 6);
        assert!(!x.is_empty());
        assert!(!x.is_mapped());
        assert_eq!(x.items_of(0), &[1, 3]);
        assert_eq!(x.items_of(1), &[0, 1, 4]);
        assert_eq!(x.items_of(2), &[2]);
        assert_eq!(x.degree(1), 3);
        assert_eq!(x.n_negatives(0), 3);
    }

    #[test]
    fn membership() {
        let x = sample();
        assert!(x.contains(0, 1));
        assert!(x.contains(0, 3));
        assert!(!x.contains(0, 0));
        assert!(!x.contains(2, 4));
    }

    #[test]
    fn duplicates_are_collapsed() {
        let x = Interactions::from_pairs(2, 2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        assert_eq!(x.len(), 1);
        assert_eq!(x.items_of(0), &[1]);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Interactions::from_pairs(2, 2, &[(2, 0)]).is_err());
        assert!(Interactions::from_pairs(2, 2, &[(0, 2)]).is_err());
    }

    #[test]
    fn empty_rows_are_fine() {
        let x = Interactions::from_pairs(4, 3, &[(1, 2)]).unwrap();
        assert_eq!(x.items_of(0), &[] as &[u32]);
        assert_eq!(x.items_of(3), &[] as &[u32]);
        assert_eq!(x.active_users(), vec![1]);
    }

    #[test]
    fn iter_pairs_round_trips() {
        let x = sample();
        let pairs: Vec<(u32, u32)> = x.iter_pairs().collect();
        let y = Interactions::from_pairs(3, 5, &pairs).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn item_counts_are_correct() {
        let x = sample();
        assert_eq!(x.item_counts(), vec![1, 2, 1, 1, 1]);
    }

    #[test]
    fn csr_parts_round_trip() {
        let x = sample();
        let (nu, ni, offs, items) = x.csr_parts();
        let y = Interactions::from_csr_parts(nu, ni, offs.to_vec(), items.to_vec()).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn from_csr_parts_validates() {
        // Wrong offsets length.
        assert!(Interactions::from_csr_parts(2, 2, vec![0, 1], vec![0]).is_err());
        // Non-monotone offsets.
        assert!(Interactions::from_csr_parts(2, 2, vec![0, 1, 0], vec![0]).is_err());
        // Unsorted row.
        assert!(Interactions::from_csr_parts(1, 3, vec![0, 2], vec![2, 1]).is_err());
        // Duplicate within row.
        assert!(Interactions::from_csr_parts(1, 3, vec![0, 2], vec![1, 1]).is_err());
        // Item out of range.
        assert!(Interactions::from_csr_parts(1, 2, vec![0, 1], vec![5]).is_err());
        // End offset mismatch.
        assert!(Interactions::from_csr_parts(1, 2, vec![0, 2], vec![1]).is_err());
    }

    #[test]
    fn union_merges_and_dedups() {
        let a = Interactions::from_pairs(2, 3, &[(0, 0), (1, 1)]).unwrap();
        let b = Interactions::from_pairs(2, 3, &[(0, 0), (0, 2)]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 3);
        assert!(u.contains(0, 0) && u.contains(0, 2) && u.contains(1, 1));

        let c = Interactions::from_pairs(3, 3, &[]).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn builder_incremental() {
        let mut b = InteractionsBuilder::with_capacity(2, 2, 4);
        assert!(b.is_empty());
        b.push(0, 0).unwrap();
        b.push(1, 1).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.push(9, 0).is_err());
        assert!(b.push(0, 9).is_err());
        let x = b.build().unwrap();
        assert_eq!(x.len(), 2);
    }

    #[test]
    fn stream_builder_matches_pair_builder() {
        // The same data through both construction paths must be equal.
        let x = sample();
        let rows: Vec<(u32, Vec<u32>)> = (0..3u32).map(|u| (u, x.items_of(u).to_vec())).collect();
        let y = InteractionsBuilder::from_stream(
            3,
            5,
            rows.iter().map(|(u, row)| Ok((*u, row.as_slice()))),
        )
        .unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn stream_builder_fills_skipped_and_trailing_rows() {
        let mut b = RowStreamBuilder::new(5, 4);
        b.push_row(1, &[0, 2]).unwrap();
        b.push_row(3, &[3]).unwrap();
        let x = b.finish().unwrap();
        assert_eq!(x.items_of(0), &[] as &[u32]);
        assert_eq!(x.items_of(1), &[0, 2]);
        assert_eq!(x.items_of(2), &[] as &[u32]);
        assert_eq!(x.items_of(3), &[3]);
        assert_eq!(x.items_of(4), &[] as &[u32]);
    }

    #[test]
    fn stream_builder_rejects_violations() {
        let mut b = RowStreamBuilder::new(3, 4);
        b.push_row(1, &[0]).unwrap();
        // Out of order.
        assert!(b.push_row(0, &[1]).is_err());
        // Same user twice.
        assert!(b.push_row(1, &[1]).is_err());
        // Out of user range.
        assert!(b.push_row(3, &[1]).is_err());
        // Unsorted row.
        assert!(b.push_row(2, &[2, 1]).is_err());
        // Duplicate within row.
        assert!(b.push_row(2, &[1, 1]).is_err());
        // Item out of range.
        assert!(b.push_row(2, &[4]).is_err());
    }

    #[test]
    fn stream_builder_empty_stream_is_all_empty_rows() {
        let x = RowStreamBuilder::new(3, 2).finish().unwrap();
        assert!(x.is_empty());
        assert_eq!(x.n_users(), 3);
        assert_eq!(x.degree(2), 0);
    }
}
