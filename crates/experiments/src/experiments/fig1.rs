//! Fig. 1 — real score distributions of true vs false negatives across
//! training epochs (MovieLens-100K, MF, uniform sampling).
//!
//! Reproduces the paper's two findings: (a) higher-scored negatives are
//! more likely false negatives, and (b) the two densities separate more as
//! training proceeds. Densities are printed as ASCII profiles plus the
//! two-sample KS distance per probed epoch.

use crate::common::cli::HarnessArgs;
use crate::common::config::{ModelKind, RunConfig};
use crate::common::csv::write_csv;
use crate::common::runner::{prepare_dataset, train_model};
use bns_core::SamplerConfig;
use bns_data::DatasetPreset;
use bns_eval::quality::ScoreSnapshot;
use bns_eval::ScoreDistributionProbe;
use bns_stats::ks::ks_statistic_two_sample;

/// Epochs probed, as fractions of the configured run length (the paper
/// shows epochs 1, 25, 50, 100 of a 100-epoch run).
pub fn probe_epochs(total: usize) -> Vec<usize> {
    let mut eps: Vec<usize> = [0.0, 0.25, 0.5, 1.0]
        .iter()
        .map(|f| (((total - 1) as f64) * f).round() as usize)
        .collect();
    eps.dedup();
    eps
}

/// Runs training with the probe attached and returns the snapshots.
pub fn run_snapshots(cfg: &RunConfig) -> Vec<ScoreSnapshot> {
    let preset = DatasetPreset::Ml100k;
    let prepared = prepare_dataset(preset, cfg);
    let mut probe = ScoreDistributionProbe::new(&prepared.dataset, probe_epochs(cfg.epochs));
    train_model(
        &prepared,
        preset,
        ModelKind::Mf,
        &SamplerConfig::Rns,
        cfg,
        &mut probe,
    );
    probe.snapshots().to_vec()
}

fn ascii_profile(curve: &[(f64, f64)], peak: f64) -> String {
    const GLYPHS: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    curve
        .iter()
        .map(|&(_, d)| {
            let level = if peak > 0.0 {
                ((d / peak) * (GLYPHS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            GLYPHS[level.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let snapshots = run_snapshots(&cfg);
    let mut out = String::from(
        "Fig. 1 — score densities of true negatives (TN) vs false negatives (FN)\n(100K / MF / RNS; 60-point KDE profiles; @ = density peak)\n\n",
    );
    let mut csv_rows = Vec::new();
    for snap in &snapshots {
        let Some((tn_curve, fn_curve)) = snap.density_curves(60) else {
            out.push_str(&format!("epoch {}: insufficient data\n", snap.epoch));
            continue;
        };
        let peak = tn_curve
            .iter()
            .chain(&fn_curve)
            .map(|&(_, d)| d)
            .fold(0.0f64, f64::max);
        let mut tn_sorted = snap.tn_scores.clone();
        let mut fn_sorted = snap.fn_scores.clone();
        tn_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        fn_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ks = ks_statistic_two_sample(&tn_sorted, &fn_sorted);
        out.push_str(&format!(
            "epoch {:>3}  (separation: mean(FN) − mean(TN) = {:+.4}, two-sample KS = {:.3})\n",
            snap.epoch,
            snap.mean_separation(),
            ks
        ));
        out.push_str(&format!("  TN |{}|\n", ascii_profile(&tn_curve, peak)));
        out.push_str(&format!("  FN |{}|\n", ascii_profile(&fn_curve, peak)));
        let lo = tn_curve.first().map(|&(x, _)| x).unwrap_or(0.0);
        let hi = tn_curve.last().map(|&(x, _)| x).unwrap_or(0.0);
        out.push_str(&format!("      score axis: [{lo:.2} .. {hi:.2}]\n\n"));
        for (x, d) in &tn_curve {
            csv_rows.push(vec![
                snap.epoch.to_string(),
                "tn".into(),
                format!("{x:.5}"),
                format!("{d:.6}"),
            ]);
        }
        for (x, d) in &fn_curve {
            csv_rows.push(vec![
                snap.epoch.to_string(),
                "fn".into(),
                format!("{x:.5}"),
                format!("{d:.6}"),
            ]);
        }
    }
    // The paper's finding (b): separation grows with training.
    if snapshots.len() >= 2 {
        let first = snapshots.first().unwrap().mean_separation();
        let last = snapshots.last().unwrap().mean_separation();
        out.push_str(&format!(
            "Shape check: separation grows with training: {} ({:+.4} → {:+.4}; paper: yes)\n",
            last > first,
            first,
            last
        ));
    }
    if let Some(dir) = &args.csv {
        match write_csv(
            dir,
            "fig1",
            &["epoch", "class", "score", "density"],
            &csv_rows,
        ) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_epochs_cover_run() {
        assert_eq!(probe_epochs(100), vec![0, 25, 50, 99]);
        assert_eq!(probe_epochs(4), vec![0, 1, 2, 3]);
        // Dedup kicks in for very short runs.
        assert_eq!(probe_epochs(1), vec![0]);
    }

    #[test]
    fn snapshots_record_both_populations() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 3,
            dim: 8,
            ..RunConfig::default()
        };
        let snaps = run_snapshots(&cfg);
        assert!(!snaps.is_empty());
        for s in &snaps {
            assert!(!s.tn_scores.is_empty());
            assert!(!s.fn_scores.is_empty());
        }
    }
}
