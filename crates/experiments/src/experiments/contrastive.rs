//! Contrastive-learning extension (the paper's §VI future work):
//! InfoNCE training where the K negatives per anchor come from a
//! pluggable sampler. Compares uniform, hard (DNS) and Bayesian (BNS)
//! negative selection under the contrastive objective.

use crate::common::cli::HarnessArgs;
use crate::common::config::RunConfig;
use crate::common::csv::write_csv;
use crate::common::runner::prepare_dataset;
use crate::common::table::TextTable;
use bns_core::{
    build_sampler, train_contrastive, BnsConfig, ContrastiveConfig, PriorKind, SamplerConfig,
};
use bns_data::DatasetPreset;
use bns_eval::evaluate_ranking;
use bns_model::MatrixFactorization;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The samplers compared under InfoNCE.
pub fn lineup() -> Vec<SamplerConfig> {
    vec![
        SamplerConfig::Rns,
        SamplerConfig::Dns { m: 5 },
        SamplerConfig::Bns {
            config: BnsConfig::default(),
            prior: PriorKind::Popularity,
        },
    ]
}

/// Runs the comparison; returns `(name, final loss, ndcg@10, ndcg@20)`.
pub fn run_rows(cfg: &RunConfig) -> Vec<(&'static str, f64, f64, f64)> {
    let preset = DatasetPreset::Ml100k;
    let prepared = prepare_dataset(preset, cfg);
    // batch_size 128: negatives for a whole chunk of anchors are drawn
    // against the chunk-start encoder (the batched TripleBatch schedule).
    // This intentionally departs from the historical anchor-at-a-time
    // schedule (batch_size 1), so loss/metric values are not comparable
    // to pre-batching runs of this binary.
    let ccfg = ContrastiveConfig {
        epochs: cfg.epochs,
        k_negatives: 8,
        batch_size: 128,
        temperature: 0.5,
        lr: 0.05,
        reg: 1e-4,
        seed: cfg.seed,
    };
    lineup()
        .into_iter()
        .map(|sampler_cfg| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xCE);
            let mut model = MatrixFactorization::new(
                prepared.dataset.n_users(),
                prepared.dataset.n_items(),
                cfg.dim,
                cfg.init_std,
                &mut rng,
            )
            .expect("valid model");
            let mut sampler =
                build_sampler(&sampler_cfg, &prepared.dataset, Some(&prepared.occupations))
                    .expect("valid sampler");
            let stats = train_contrastive(&mut model, &prepared.dataset, sampler.as_mut(), &ccfg)
                .expect("contrastive training");
            let report = evaluate_ranking(&model, &prepared.dataset, &cfg.ks, cfg.threads);
            (
                sampler_cfg.display_name(),
                stats.loss_per_epoch.last().copied().unwrap_or(0.0),
                report.at(10).map(|r| r.ndcg).unwrap_or(0.0),
                report.at(20).map(|r| r.ndcg).unwrap_or(0.0),
            )
        })
        .collect()
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let rows = run_rows(&cfg);
    let mut out = String::from(
        "Contrastive extension — InfoNCE (K = 8, τ = 0.5) with pluggable negative\nselection on 100K / MF embeddings (paper §VI future work)\n\n",
    );
    let mut table = TextTable::new(vec!["negatives", "final loss", "NDCG@10", "NDCG@20"]);
    for (name, loss, n10, n20) in &rows {
        table.row(vec![
            name.to_string(),
            format!("{loss:.4}"),
            format!("{n10:.4}"),
            format!("{n20:.4}"),
        ]);
    }
    out.push_str(&table.render());
    let ndcg = |name: &str| {
        rows.iter()
            .find(|(n, ..)| *n == name)
            .map(|r| r.3)
            .unwrap_or(0.0)
    };
    out.push_str(&format!(
        "\nShape check: BNS negatives ≥ RNS negatives under InfoNCE: {} ({:.4} vs {:.4})\n",
        ndcg("BNS") >= ndcg("RNS") * 0.95,
        ndcg("BNS"),
        ndcg("RNS")
    ));
    if let Some(dir) = &args.csv {
        let csv_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|(n, l, a, b)| {
                vec![
                    n.to_string(),
                    format!("{l:.6}"),
                    format!("{a:.6}"),
                    format!("{b:.6}"),
                ]
            })
            .collect();
        match write_csv(
            dir,
            "contrastive",
            &["sampler", "loss", "ndcg10", "ndcg20"],
            &csv_rows,
        ) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_is_rns_dns_bns() {
        let names: Vec<&str> = lineup().iter().map(|c| c.display_name()).collect();
        assert_eq!(names, vec!["RNS", "DNS", "BNS"]);
    }

    #[test]
    fn tiny_run_smoke() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 2,
            dim: 8,
            threads: 2,
            ..RunConfig::default()
        };
        let rows = run_rows(&cfg);
        assert_eq!(rows.len(), 3);
        for (_, loss, n10, _) in rows {
            assert!(loss.is_finite() && loss >= 0.0);
            assert!((0.0..=1.0).contains(&n10));
        }
    }
}
