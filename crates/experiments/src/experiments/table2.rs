//! Table II — recommendation performance of six samplers × two models ×
//! three datasets, P/R/NDCG @ {5, 10, 20}.
//!
//! Measured values are printed with the paper's value in parentheses. The
//! claim being reproduced is the *shape*: BNS best (or second) everywhere,
//! DNS the strongest baseline, PNS below RNS.

use crate::common::cli::HarnessArgs;
use crate::common::config::{ModelKind, RunConfig};
use crate::common::csv::write_csv;
use crate::common::paper::table2_lookup;
use crate::common::runner::{prepare_dataset, train_and_eval};
use crate::common::table::{fmt_vs, TextTable};
use bns_core::SamplerConfig;
use bns_data::DatasetPreset;
use bns_eval::RankingReport;

/// One measured result row.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// Dataset short name as used in the paper table.
    pub dataset: &'static str,
    /// Model name.
    pub model: &'static str,
    /// Sampler name.
    pub method: &'static str,
    /// Measured metrics `[P5, R5, N5, P10, R10, N10, P20, R20, N20]`.
    pub metrics: [f64; 9],
    /// Training wall-clock seconds.
    pub train_seconds: f64,
}

fn flatten(report: &RankingReport) -> [f64; 9] {
    let mut out = [0.0; 9];
    for (i, row) in report.rows.iter().enumerate().take(3) {
        out[i * 3] = row.precision;
        out[i * 3 + 1] = row.recall;
        out[i * 3 + 2] = row.ndcg;
    }
    out
}

fn paper_key(preset: DatasetPreset) -> &'static str {
    match preset {
        DatasetPreset::Ml100k => "100K",
        DatasetPreset::Ml1m => "1M",
        DatasetPreset::YahooR3 => "Yahoo",
    }
}

/// Runs the full grid (or a subset of datasets) and returns result rows.
pub fn run_grid(cfg: &RunConfig, presets: &[DatasetPreset]) -> Vec<ComboResult> {
    let mut results = Vec::new();
    for &preset in presets {
        let prepared = prepare_dataset(preset, cfg);
        for kind in [ModelKind::Mf, ModelKind::LightGcn] {
            for sampler in SamplerConfig::paper_lineup() {
                let (report, stats) = train_and_eval(&prepared, preset, kind, &sampler, cfg);
                results.push(ComboResult {
                    dataset: paper_key(preset),
                    model: kind.name(),
                    method: sampler.display_name(),
                    metrics: flatten(&report),
                    train_seconds: stats.wall_seconds,
                });
            }
        }
    }
    results
}

/// Renders the Table II report.
pub fn render(results: &[ComboResult]) -> String {
    let mut out = String::from("Table II — recommendation performance, measured (paper)\n\n");
    let mut table = TextTable::new(vec![
        "dataset", "model", "method", "P@5", "R@5", "N@5", "P@10", "R@10", "N@10", "P@20", "R@20",
        "N@20",
    ]);
    for r in results {
        let paper = table2_lookup(r.dataset, r.model, r.method);
        let mut cells = vec![
            r.dataset.to_string(),
            r.model.to_string(),
            r.method.to_string(),
        ];
        for i in 0..9 {
            cells.push(fmt_vs(r.metrics[i], paper.map(|p| p[i])));
        }
        table.row(cells);
    }
    out.push_str(&table.render());
    out.push_str(&shape_checks(results));
    out
}

/// Textual verdicts on the paper's qualitative claims.
pub fn shape_checks(results: &[ComboResult]) -> String {
    let mut out = String::from("\nShape checks (paper's qualitative claims):\n");
    let get = |ds: &str, model: &str, method: &str| -> Option<&ComboResult> {
        results
            .iter()
            .find(|r| r.dataset == ds && r.model == model && r.method == method)
    };
    let mut bns_best_or_second = 0usize;
    let mut blocks = 0usize;
    let mut rns_beats_pns = 0usize;
    for ds in ["100K", "1M", "Yahoo"] {
        for model in ["MF", "LightGCN"] {
            let Some(bns) = get(ds, model, "BNS") else {
                continue;
            };
            blocks += 1;
            // NDCG@10 comparison across methods.
            let mut ndcgs: Vec<(f64, &str)> = ["RNS", "PNS", "AOBPR", "DNS", "SRNS", "BNS"]
                .iter()
                .filter_map(|m| get(ds, model, m).map(|r| (r.metrics[5], *m)))
                .collect();
            ndcgs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let rank = ndcgs.iter().position(|(_, m)| *m == "BNS").unwrap_or(9);
            if rank <= 1 {
                bns_best_or_second += 1;
            }
            let _ = bns;
            if let (Some(rns), Some(pns)) = (get(ds, model, "RNS"), get(ds, model, "PNS")) {
                if rns.metrics[5] >= pns.metrics[5] {
                    rns_beats_pns += 1;
                }
            }
        }
    }
    out.push_str(&format!(
        "  BNS best-or-second on NDCG@10: {bns_best_or_second}/{blocks} blocks (paper: all)\n"
    ));
    out.push_str(&format!(
        "  RNS >= PNS on NDCG@10:         {rns_beats_pns}/{blocks} blocks (paper: all)\n"
    ));
    out
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let results = run_grid(&cfg, &DatasetPreset::ALL);
    let mut out = render(&results);
    if let Some(dir) = &args.csv {
        let header = [
            "dataset",
            "model",
            "method",
            "p5",
            "r5",
            "n5",
            "p10",
            "r10",
            "n10",
            "p20",
            "r20",
            "n20",
            "train_seconds",
        ];
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                let mut row = vec![
                    r.dataset.to_string(),
                    r.model.to_string(),
                    r.method.to_string(),
                ];
                row.extend(r.metrics.iter().map(|m| format!("{m:.6}")));
                row.push(format!("{:.3}", r.train_seconds));
                row
            })
            .collect();
        match write_csv(dir, "table2", &header, &rows) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs_and_renders() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 2,
            dim: 8,
            threads: 2,
            ..RunConfig::default()
        };
        let results = run_grid(&cfg, &[DatasetPreset::Ml100k]);
        assert_eq!(results.len(), 2 * 6);
        let rendered = render(&results);
        assert!(rendered.contains("BNS"));
        assert!(rendered.contains("Shape checks"));
        // Paper reference values present.
        assert!(rendered.contains("(0.4205)"));
    }
}
