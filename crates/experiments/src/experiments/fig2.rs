//! Fig. 2 — theoretical TN/FN distributions for three base laws.
//!
//! Plots `g(x) = 2f(x)(1 − F(x))` and `h(x) = 2F(x)f(x)` for Gaussian
//! `N(0, 1)`, Student `t(3)` and Gamma `Ga(2, 1)` — the same separated
//! structure Fig. 1's empirical densities converge to.

use crate::common::cli::HarnessArgs;
use crate::common::csv::write_csv;
use bns_stats::dist::Continuous;
use bns_stats::{
    FalseNegativeDensity, GammaDist, Normal, OrderStatisticDensity, StudentT, TrueNegativeDensity,
};

/// A named base distribution with its plotting range.
struct Case {
    name: &'static str,
    lo: f64,
    hi: f64,
    pdf: Box<dyn Fn(f64) -> f64>,
    g: Box<dyn Fn(f64) -> f64>,
    h: Box<dyn Fn(f64) -> f64>,
}

fn cases() -> Vec<Case> {
    let normal = Normal::new(0.0, 1.0).expect("valid");
    let student = StudentT::new(3.0).expect("valid");
    let gamma = GammaDist::new(2.0, 1.0).expect("valid");
    let tn_n = TrueNegativeDensity::new(normal);
    let fn_n = FalseNegativeDensity::new(normal);
    let tn_t = TrueNegativeDensity::new(student);
    let fn_t = FalseNegativeDensity::new(student);
    let tn_g = TrueNegativeDensity::new(gamma);
    let fn_g = FalseNegativeDensity::new(gamma);
    vec![
        Case {
            name: "Gaussian N(0,1)",
            lo: -4.0,
            hi: 4.0,
            pdf: Box::new(move |x| normal.pdf(x)),
            g: Box::new(move |x| tn_n.density(x)),
            h: Box::new(move |x| fn_n.density(x)),
        },
        Case {
            name: "Student t(3)",
            lo: -5.0,
            hi: 5.0,
            pdf: Box::new(move |x| student.pdf(x)),
            g: Box::new(move |x| tn_t.density(x)),
            h: Box::new(move |x| fn_t.density(x)),
        },
        Case {
            name: "Gamma Ga(2,1)",
            lo: 0.0,
            hi: 8.0,
            pdf: Box::new(move |x| gamma.pdf(x)),
            g: Box::new(move |x| tn_g.density(x)),
            h: Box::new(move |x| fn_g.density(x)),
        },
    ]
}

fn ascii_profile(values: &[f64], peak: f64) -> String {
    const GLYPHS: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    values
        .iter()
        .map(|&d| {
            let level = if peak > 0.0 {
                ((d / peak) * (GLYPHS.len() - 1) as f64).round() as usize
            } else {
                0
            };
            GLYPHS[level.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let mut out = String::from(
        "Fig. 2 — theoretical distributions of TN and FN scores\n(g = 2f(1−F) for TN, h = 2Ff for FN; 64-point profiles)\n\n",
    );
    let mut csv_rows = Vec::new();
    for case in cases() {
        let points = 64usize;
        let step = (case.hi - case.lo) / (points - 1) as f64;
        let xs: Vec<f64> = (0..points).map(|i| case.lo + step * i as f64).collect();
        let f_vals: Vec<f64> = xs.iter().map(|&x| (case.pdf)(x)).collect();
        let g_vals: Vec<f64> = xs.iter().map(|&x| (case.g)(x)).collect();
        let h_vals: Vec<f64> = xs.iter().map(|&x| (case.h)(x)).collect();
        let peak = f_vals
            .iter()
            .chain(&g_vals)
            .chain(&h_vals)
            .cloned()
            .fold(0.0f64, f64::max);

        // Numeric sanity printed with the plot: both integrate to ~1 and
        // the means are ordered E[g] < E[base] < E[h].
        let integrate = |vals: &[f64]| vals.iter().sum::<f64>() * step;
        let mean_of = |vals: &[f64]| xs.iter().zip(vals).map(|(&x, &d)| x * d).sum::<f64>() * step;
        out.push_str(&format!(
            "{}  (∫g = {:.3}, ∫h = {:.3}; E[tn] = {:+.3} < E[fn] = {:+.3})\n",
            case.name,
            integrate(&g_vals),
            integrate(&h_vals),
            mean_of(&g_vals),
            mean_of(&h_vals),
        ));
        out.push_str(&format!("  f  |{}|\n", ascii_profile(&f_vals, peak)));
        out.push_str(&format!("  TN |{}|\n", ascii_profile(&g_vals, peak)));
        out.push_str(&format!("  FN |{}|\n", ascii_profile(&h_vals, peak)));
        out.push_str(&format!(
            "      x axis: [{:.1} .. {:.1}]\n\n",
            case.lo, case.hi
        ));

        for (i, &x) in xs.iter().enumerate() {
            csv_rows.push(vec![
                case.name.to_string(),
                format!("{x:.5}"),
                format!("{:.6}", f_vals[i]),
                format!("{:.6}", g_vals[i]),
                format!("{:.6}", h_vals[i]),
            ]);
        }
    }
    if let Some(dir) = &args.csv {
        match write_csv(
            dir,
            "fig2",
            &["distribution", "x", "f", "g_tn", "h_fn"],
            &csv_rows,
        ) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_three_distributions() {
        let report = run(&HarnessArgs::default());
        assert!(report.contains("Gaussian"));
        assert!(report.contains("Student"));
        assert!(report.contains("Gamma"));
    }

    #[test]
    fn report_shows_unit_integrals_and_ordered_means() {
        let report = run(&HarnessArgs::default());
        // Every case line contains integrals ≈ 1 (formatted to 3 decimals
        // they may read 0.99x–1.00x) — just assert the separation claim is
        // embedded for each case.
        assert_eq!(report.matches("E[tn]").count(), 3);
    }
}
