//! Table I — dataset statistics.
//!
//! Prints the measured statistics of the generated stand-ins next to the
//! paper's published counts, plus density / degree / popularity-skew
//! diagnostics that justify the synthetic substitution (DESIGN.md §3).

use crate::common::cli::HarnessArgs;
use crate::common::config::RunConfig;
use crate::common::csv::write_csv;
use crate::common::runner::prepare_dataset;
use crate::common::table::TextTable;
use bns_data::{DatasetPreset, DatasetStats};

/// Runs the experiment and returns the rendered report.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let mut out = String::new();
    out.push_str(&format!(
        "Table I — dataset statistics (scale {:.2}; paper counts in parentheses)\n\n",
        cfg.scale
    ));
    let mut table = TextTable::new(vec![
        "dataset", "users", "items", "train", "test", "density", "deg/user", "gini",
    ]);
    let mut csv_rows = Vec::new();
    for preset in DatasetPreset::ALL {
        let prepared = prepare_dataset(preset, &cfg);
        let s = DatasetStats::of(&prepared.dataset);
        let (pu, pi, pn) = preset.paper_counts();
        let paper_train = (pn as f64 * 0.8).round() as usize;
        let paper_test = pn - paper_train;
        table.row(vec![
            preset.name().to_string(),
            format!("{} ({})", s.users, pu),
            format!("{} ({})", s.items, pi),
            format!("{} ({})", s.train_size, paper_train),
            format!("{} ({})", s.test_size, paper_test),
            format!("{:.4}", s.density),
            format!("{:.1}", s.mean_user_degree),
            format!("{:.3}", s.popularity_gini),
        ]);
        csv_rows.push(vec![
            preset.name().to_string(),
            s.users.to_string(),
            s.items.to_string(),
            s.train_size.to_string(),
            s.test_size.to_string(),
            format!("{:.6}", s.density),
            format!("{:.3}", s.mean_user_degree),
            format!("{:.4}", s.popularity_gini),
        ]);
    }
    out.push_str(&table.render());
    if let Some(dir) = &args.csv {
        let header = [
            "dataset",
            "users",
            "items",
            "train",
            "test",
            "density",
            "deg_per_user",
            "gini",
        ];
        match write_csv(dir, "table1", &header, &csv_rows) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_three_rows() {
        let args = HarnessArgs {
            scale: 0.05,
            ..HarnessArgs::default()
        };
        let report = run(&args);
        assert!(report.contains("MovieLens-100K"));
        assert!(report.contains("MovieLens-1M"));
        assert!(report.contains("Yahoo!-R3"));
        // Paper counts are cited.
        assert!(report.contains("(943)"));
        assert!(report.contains("(6040)"));
    }
}
