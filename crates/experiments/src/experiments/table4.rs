//! Table IV — the asymptotic process to the optimal sampler h*.
//!
//! Under the ideal (oracle) prior `P_fn = 0.64/0.04` (§IV-C3), sweeping the
//! candidate-set size |Mᵤ| ∈ {1, 3, 5, 10, 20, 50, 100, 500, all} shows
//! monotone improvement toward the optimal sampler with no degradation —
//! the behaviour that motivates "the larger |Mᵤ| the better *iff* the prior
//! is reliable".

use crate::common::cli::HarnessArgs;
use crate::common::config::{ModelKind, RunConfig};
use crate::common::csv::write_csv;
use crate::common::paper::TABLE4;
use crate::common::runner::{prepare_dataset, train_and_eval};
use crate::common::table::{fmt_vs, TextTable};
use bns_core::{BnsConfig, PriorKind, SamplerConfig};
use bns_data::DatasetPreset;

/// The swept sizes; `usize::MAX` encodes "all negatives".
pub const SIZES: [usize; 9] = [1, 3, 5, 10, 20, 50, 100, 500, usize::MAX];

fn size_label(m: usize) -> String {
    if m == usize::MAX {
        "|I-_u|".to_string()
    } else {
        m.to_string()
    }
}

/// Scales a paper-size |Mᵤ| to the configured dataset scale so the sweep
/// covers the same *fractions* of the catalog (500 of 1682 items ≈ 30%).
fn scaled_size(m: usize, scale: f64) -> usize {
    if m == usize::MAX || m <= 20 {
        // Small sizes and "all" are kept verbatim.
        m
    } else {
        ((m as f64 * scale).round() as usize).max(21)
    }
}

/// Runs the sweep and returns `(paper size, [9 metrics])` rows.
pub fn run_rows(cfg: &RunConfig) -> Vec<(usize, [f64; 9])> {
    let preset = DatasetPreset::Ml100k;
    let prepared = prepare_dataset(preset, cfg);
    SIZES
        .iter()
        .map(|&m| {
            let sampler = SamplerConfig::Bns {
                config: BnsConfig {
                    m: scaled_size(m, cfg.scale),
                    ..BnsConfig::default()
                },
                prior: PriorKind::Oracle {
                    p_if_fn: 0.64,
                    p_if_tn: 0.04,
                },
            };
            let (report, _) = train_and_eval(&prepared, preset, ModelKind::Mf, &sampler, cfg);
            let mut metrics = [0.0; 9];
            for (i, row) in report.rows.iter().enumerate().take(3) {
                metrics[i * 3] = row.precision;
                metrics[i * 3 + 1] = row.recall;
                metrics[i * 3 + 2] = row.ndcg;
            }
            (m, metrics)
        })
        .collect()
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let rows = run_rows(&cfg);
    let mut out = String::from(
        "Table IV — asymptotic optimal sampler under the ideal prior (100K / MF), measured (paper)\n\n",
    );
    let mut table = TextTable::new(vec![
        "|Mu|", "P@5", "R@5", "N@5", "P@10", "R@10", "N@10", "P@20", "R@20", "N@20",
    ]);
    for (m, metrics) in &rows {
        let paper = TABLE4.iter().find(|(pm, _)| pm == m).map(|(_, v)| *v);
        let mut cells = vec![size_label(*m)];
        for i in 0..9 {
            cells.push(fmt_vs(metrics[i], paper.map(|p| p[i])));
        }
        table.row(cells);
    }
    out.push_str(&table.render());

    // Shape checks. The paper's Table IV shows monotone growth all the way
    // to h*; the robust version of that claim is (a) every size beats the
    // |Mu| = 1 (RNS) baseline, and (b) the curve rises through the small
    // sizes. The full climb to NDCG@5 ≈ 0.71 requires paper-scale catalogs
    // (see EXPERIMENTS.md).
    let ndcg20 = |m: usize| {
        rows.iter()
            .find(|(x, _)| *x == m)
            .map(|(_, v)| v[8])
            .unwrap_or(0.0)
    };
    let base = ndcg20(1);
    let all_beat_base = rows.iter().skip(1).all(|(_, v)| v[8] >= base);
    let best = rows
        .iter()
        .max_by(|a, b| a.1[8].partial_cmp(&b.1[8]).unwrap())
        .map(|(m, v)| (size_label(*m), v[8]))
        .unwrap_or(("-".into(), 0.0));
    out.push_str(&format!(
        "\nShape checks:\n  every |Mu| > 1 beats the RNS baseline on NDCG@20: {} (base {:.4})\n",
        all_beat_base, base
    ));
    out.push_str(&format!(
        "  rises through small sizes: {} (1: {:.4} → 5: {:.4} → 10: {:.4}); best at |Mu| = {} ({:.4})\n",
        ndcg20(5) > base && ndcg20(10) >= ndcg20(5) * 0.98,
        base,
        ndcg20(5),
        ndcg20(10),
        best.0,
        best.1
    ));

    if let Some(dir) = &args.csv {
        let header = [
            "m", "p5", "r5", "n5", "p10", "r10", "n10", "p20", "r20", "n20",
        ];
        let csv_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|(m, metrics)| {
                let mut row = vec![size_label(*m)];
                row.extend(metrics.iter().map(|v| format!("{v:.6}")));
                row
            })
            .collect();
        match write_csv(dir, "table4", &header, &csv_rows) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_scaling_keeps_small_sizes() {
        assert_eq!(scaled_size(1, 0.15), 1);
        assert_eq!(scaled_size(5, 0.15), 5);
        assert_eq!(scaled_size(20, 0.15), 20);
        assert_eq!(scaled_size(usize::MAX, 0.15), usize::MAX);
        // Large sizes shrink with the catalog.
        assert_eq!(scaled_size(500, 0.15), 75);
        assert!(scaled_size(50, 0.15) >= 21);
    }

    #[test]
    fn tiny_sweep_smoke() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 2,
            dim: 8,
            threads: 2,
            ..RunConfig::default()
        };
        // Restrict to a couple of sizes for speed by reusing run_rows and
        // checking the row count only (full sweep is cheap at scale 0.05).
        let rows = run_rows(&cfg);
        assert_eq!(rows.len(), SIZES.len());
    }
}
