//! Fig. 3 — numerical surface of the normalized posterior `unbias(F, P_fn)`
//! over the unit square, demonstrating monotone decrease in both arguments.

use crate::common::cli::HarnessArgs;
use crate::common::csv::write_csv;
use bns_core::bns::unbias::unbias;

/// Grid resolution per axis.
pub const GRID: usize = 11;

/// Evaluates the surface on a `GRID × GRID` lattice.
pub fn surface() -> Vec<(f64, f64, f64)> {
    let mut out = Vec::with_capacity(GRID * GRID);
    for i in 0..GRID {
        let f = i as f64 / (GRID - 1) as f64;
        for j in 0..GRID {
            let p = j as f64 / (GRID - 1) as f64;
            out.push((f, p, unbias(f, p)));
        }
    }
    out
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let grid = surface();
    let mut out = String::from(
        "Fig. 3 — normalized posterior unbias(F, P_fn)\nrows: F(x̂) from 0 to 1; cols: P_fn from 0 to 1\n\n",
    );
    out.push_str("  F\\P  ");
    for j in 0..GRID {
        out.push_str(&format!("{:>5.1}", j as f64 / (GRID - 1) as f64));
    }
    out.push('\n');
    for i in 0..GRID {
        let f = i as f64 / (GRID - 1) as f64;
        out.push_str(&format!("  {f:>4.1} "));
        for j in 0..GRID {
            let (_, _, u) = grid[i * GRID + j];
            out.push_str(&format!("{u:>5.2}"));
        }
        out.push('\n');
    }
    out.push_str(
        "\nShape checks: monotone decreasing along every row and column;\n\
         unbias ∈ [0, 1]; unbias(F, 0.5) = 1 − F (paper Fig. 3).\n",
    );
    if let Some(dir) = &args.csv {
        let rows: Vec<Vec<String>> = grid
            .iter()
            .map(|(f, p, u)| vec![format!("{f:.3}"), format!("{p:.3}"), format!("{u:.6}")])
            .collect();
        match write_csv(dir, "fig3", &["f_hat", "p_fn", "unbias"], &rows) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_has_full_grid_and_valid_range() {
        let s = surface();
        assert_eq!(s.len(), GRID * GRID);
        for &(f, p, u) in &s {
            assert!((0.0..=1.0).contains(&f));
            assert!((0.0..=1.0).contains(&p));
            assert!((0.0..=1.0).contains(&u), "unbias({f},{p}) = {u}");
        }
    }

    #[test]
    fn neutral_prior_diagonal() {
        // unbias(F, 0.5) = 1 − F.
        for &(f, p, u) in &surface() {
            if (p - 0.5).abs() < 1e-9 {
                assert!((u - (1.0 - f)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn report_renders() {
        let r = run(&HarnessArgs::default());
        assert!(r.contains("F\\P"));
        assert!(r.lines().count() > GRID);
    }
}
