//! Fig. 4 — sampling quality per epoch on MovieLens-100K / MF.
//!
//! Tracks the true-negative rate (Eq. 33) and signed informativeness
//! (Eq. 34) of every sampler: the six Table II samplers plus the pure
//! posterior criterion of Eq. (35) ("BNS-post"). The paper's shape: BNS's
//! TNR is closest to 1; hard samplers (AOBPR/DNS) have the worst TNR; the
//! static samplers sit at the base rate; INF decays as training converges.

use crate::common::cli::HarnessArgs;
use crate::common::config::{ModelKind, RunConfig};
use crate::common::csv::write_csv;
use crate::common::runner::{prepare_dataset, train_model};
use crate::common::table::TextTable;
use bns_core::{BnsConfig, Criterion, PriorKind, SamplerConfig};
use bns_data::DatasetPreset;
use bns_eval::quality::EpochQuality;
use bns_eval::QualityTracker;

/// The Fig. 4 lineup: Table II samplers + the Eq. (35) posterior criterion.
pub fn lineup() -> Vec<(&'static str, SamplerConfig)> {
    let mut v: Vec<(&'static str, SamplerConfig)> = vec![
        ("RNS", SamplerConfig::Rns),
        ("PNS", SamplerConfig::Pns),
        ("AOBPR", SamplerConfig::Aobpr { lambda_frac: 0.05 }),
        ("DNS", SamplerConfig::Dns { m: 5 }),
        (
            "SRNS",
            SamplerConfig::Srns {
                s1: 20,
                s2: 5,
                alpha: 1.0,
            },
        ),
        (
            "BNS",
            SamplerConfig::Bns {
                config: BnsConfig::default(),
                prior: PriorKind::Popularity,
            },
        ),
    ];
    v.push((
        "BNS-post",
        SamplerConfig::Bns {
            config: BnsConfig {
                criterion: Criterion::PosteriorMax,
                ..BnsConfig::default()
            },
            prior: PriorKind::Popularity,
        },
    ));
    v
}

/// Runs every sampler and returns its per-epoch quality history.
pub fn run_histories(cfg: &RunConfig) -> Vec<(&'static str, Vec<EpochQuality>)> {
    let preset = DatasetPreset::Ml100k;
    let prepared = prepare_dataset(preset, cfg);
    lineup()
        .into_iter()
        .map(|(name, sampler)| {
            let mut tracker = QualityTracker::new(&prepared.dataset);
            train_model(
                &prepared,
                preset,
                ModelKind::Mf,
                &sampler,
                cfg,
                &mut tracker,
            );
            (name, tracker.history().to_vec())
        })
        .collect()
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let histories = run_histories(&cfg);
    let mut out = String::from("Fig. 4 — sampling quality per epoch (100K / MF)\n\n");

    // TNR table at a few representative epochs + run tail.
    let probe: Vec<usize> = {
        let last = cfg.epochs - 1;
        let mut eps = vec![0, cfg.epochs / 4, cfg.epochs / 2, last];
        eps.dedup();
        eps
    };
    let mut header: Vec<String> = vec!["sampler".into()];
    header.extend(probe.iter().map(|e| format!("TNR@e{e}")));
    header.push("tail TNR".into());
    header.extend(probe.iter().map(|e| format!("INF@e{e}")));
    let mut table = TextTable::new(header);
    for (name, hist) in &histories {
        let mut cells = vec![name.to_string()];
        for &e in &probe {
            cells.push(format!("{:.3}", hist.get(e).map(|q| q.tnr).unwrap_or(0.0)));
        }
        let tail_n = (cfg.epochs / 5).max(1);
        let tail: f64 = hist.iter().rev().take(tail_n).map(|q| q.tnr).sum::<f64>() / tail_n as f64;
        cells.push(format!("{tail:.3}"));
        for &e in &probe {
            cells.push(format!("{:+.3}", hist.get(e).map(|q| q.inf).unwrap_or(0.0)));
        }
        table.row(cells);
    }
    out.push_str(&table.render());

    // Shape checks.
    let tail_tnr = |name: &str| -> f64 {
        let tail_n = (cfg.epochs / 5).max(1);
        histories
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h.iter().rev().take(tail_n).map(|q| q.tnr).sum::<f64>() / tail_n as f64)
            .unwrap_or(0.0)
    };
    let (bns_post, bns, rns, dns, aobpr) = (
        tail_tnr("BNS-post"),
        tail_tnr("BNS"),
        tail_tnr("RNS"),
        tail_tnr("DNS"),
        tail_tnr("AOBPR"),
    );
    out.push_str("\nShape checks (paper Fig. 4):\n");
    // §IV-B2: the posterior criterion (Eq. 35) is the one that "aims to
    // select true negative instances" — its TNR must be closest to 1.
    out.push_str(&format!(
        "  posterior criterion has best TNR: {} (BNS-post {:.3} vs best other {:.3})\n",
        [bns, rns, dns, aobpr].iter().all(|&t| bns_post >= t),
        bns_post,
        [bns, rns, dns, aobpr]
            .iter()
            .cloned()
            .fold(0.0f64, f64::max)
    ));
    out.push_str(&format!(
        "  min-risk BNS trades TNR for info: sits between DNS and RNS: {} ({:.3} in [{:.3}, {:.3}])\n",
        bns >= dns.min(rns) && bns <= dns.max(rns) + 0.02,
        bns,
        dns.min(rns),
        dns.max(rns)
    ));
    out.push_str(&format!(
        "  hard samplers have lowest TNR:   {} (DNS {:.3}, AOBPR {:.3} < RNS {:.3})\n",
        dns < rns && aobpr < rns,
        dns,
        aobpr,
        rns
    ));
    if let Some(dir) = &args.csv {
        let mut rows = Vec::new();
        for (name, hist) in &histories {
            for q in hist {
                rows.push(vec![
                    name.to_string(),
                    q.epoch.to_string(),
                    format!("{:.6}", q.tnr),
                    format!("{:.6}", q.inf),
                    q.tn.to_string(),
                    q.fn_.to_string(),
                ]);
            }
        }
        match write_csv(
            dir,
            "fig4",
            &["sampler", "epoch", "tnr", "inf", "tn", "fn"],
            &rows,
        ) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_has_seven_entries() {
        assert_eq!(lineup().len(), 7);
    }

    #[test]
    fn histories_cover_every_epoch() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 3,
            dim: 8,
            ..RunConfig::default()
        };
        let histories = run_histories(&cfg);
        assert_eq!(histories.len(), 7);
        for (name, h) in &histories {
            assert_eq!(h.len(), 3, "{name} history incomplete");
            for q in h {
                assert!((0.0..=1.0).contains(&q.tnr));
            }
        }
    }
}
