//! Fig. 5 — sensitivity of BNS to λ and |Mᵤ| (NDCG@20 on 100K / MF).
//!
//! The paper sweeps λ ∈ {0.1, 1, 5, 10, 15} at |Mᵤ| = 5 (NDCG@20 rises
//! from λ = 0.1 to a peak at λ = 5), then |Mᵤ| ∈ {1, 3, 5, 10, 15} at
//! λ = 5 (peak at 5–10, decline afterwards under the *popularity* prior —
//! contrast with Table IV's oracle prior where bigger is monotonically
//! better).

use crate::common::cli::HarnessArgs;
use crate::common::config::{ModelKind, RunConfig};
use crate::common::csv::write_csv;
use crate::common::paper::{FIG5_LAMBDAS, FIG5_SIZES};
use crate::common::runner::{prepare_dataset, train_and_eval};
use crate::common::table::TextTable;
use bns_core::{BnsConfig, LambdaSchedule, PriorKind, SamplerConfig};
use bns_data::DatasetPreset;

/// Result of both sweeps.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// `(λ, NDCG@20)` at |Mᵤ| = 5.
    pub lambda_sweep: Vec<(f64, f64)>,
    /// `(|Mᵤ|, NDCG@20)` at λ = 5.
    pub size_sweep: Vec<(usize, f64)>,
}

/// Runs both sweeps.
pub fn run_sweeps(cfg: &RunConfig) -> Fig5Result {
    let preset = DatasetPreset::Ml100k;
    let prepared = prepare_dataset(preset, cfg);
    let ndcg20 = |sampler: &SamplerConfig| -> f64 {
        let (report, _) = train_and_eval(&prepared, preset, ModelKind::Mf, sampler, cfg);
        report.at(20).map(|r| r.ndcg).unwrap_or(0.0)
    };

    let lambda_sweep = FIG5_LAMBDAS
        .iter()
        .map(|&l| {
            let sampler = SamplerConfig::Bns {
                config: BnsConfig {
                    lambda: LambdaSchedule::Constant(l),
                    ..BnsConfig::default()
                },
                prior: PriorKind::Popularity,
            };
            (l, ndcg20(&sampler))
        })
        .collect();

    let size_sweep = FIG5_SIZES
        .iter()
        .map(|&m| {
            let sampler = SamplerConfig::Bns {
                config: BnsConfig {
                    m,
                    ..BnsConfig::default()
                },
                prior: PriorKind::Popularity,
            };
            (m, ndcg20(&sampler))
        })
        .collect();

    Fig5Result {
        lambda_sweep,
        size_sweep,
    }
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let result = run_sweeps(&cfg);
    let mut out = String::from("Fig. 5 — impact of λ and |Mu| on NDCG@20 (100K / MF)\n\n");

    let mut t1 = TextTable::new(vec!["lambda", "NDCG@20"]);
    for &(l, n) in &result.lambda_sweep {
        t1.row(vec![format!("{l}"), format!("{n:.4}")]);
    }
    out.push_str("λ sweep at |Mu| = 5 (paper: rises sharply 0.1 → 1, peaks at 5):\n");
    out.push_str(&t1.render());

    let mut t2 = TextTable::new(vec!["|Mu|", "NDCG@20"]);
    for &(m, n) in &result.size_sweep {
        t2.row(vec![format!("{m}"), format!("{n:.4}")]);
    }
    out.push_str("\n|Mu| sweep at λ = 5 (paper: peak at 5–10; |Mu| = 1 is RNS):\n");
    out.push_str(&t2.render());

    // Shape checks.
    let at_lambda = |l: f64| {
        result
            .lambda_sweep
            .iter()
            .find(|(x, _)| (*x - l).abs() < 1e-9)
            .map(|(_, n)| *n)
            .unwrap_or(0.0)
    };
    let at_size = |m: usize| {
        result
            .size_sweep
            .iter()
            .find(|(x, _)| *x == m)
            .map(|(_, n)| *n)
            .unwrap_or(0.0)
    };
    out.push_str("\nShape checks:\n");
    out.push_str(&format!(
        "  NDCG@20(λ=1) > NDCG@20(λ=0.1): {} ({:.4} vs {:.4}; paper: yes)\n",
        at_lambda(1.0) > at_lambda(0.1),
        at_lambda(1.0),
        at_lambda(0.1)
    ));
    // The paper's peak is at 5–10 with decline after; the robust form of
    // that claim is diminishing returns: the 1→5 gain dwarfs the 10→15
    // change (which may be a small positive or negative wiggle at reduced
    // dataset scale).
    let gain_small = at_size(5) - at_size(1);
    let gain_tail = (at_size(15) - at_size(10)).abs();
    out.push_str(&format!(
        "  diminishing returns after 10:  {} (Δ[1→5] = {:+.4} vs |Δ[10→15]| = {:.4}; paper: yes)\n",
        gain_small > 5.0 * gain_tail,
        gain_small,
        gain_tail
    ));
    out.push_str(&format!(
        "  |Mu|=5 beats |Mu|=1 (RNS):     {} ({:.4} vs {:.4}; paper: yes)\n",
        at_size(5) > at_size(1),
        at_size(5),
        at_size(1)
    ));

    if let Some(dir) = &args.csv {
        let mut rows: Vec<Vec<String>> = result
            .lambda_sweep
            .iter()
            .map(|(l, n)| vec!["lambda".into(), format!("{l}"), format!("{n:.6}")])
            .collect();
        rows.extend(
            result
                .size_sweep
                .iter()
                .map(|(m, n)| vec!["size".into(), format!("{m}"), format!("{n:.6}")]),
        );
        match write_csv(dir, "fig5", &["sweep", "value", "ndcg20"], &rows) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_cover_paper_grids() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 2,
            dim: 8,
            ..RunConfig::default()
        };
        let r = run_sweeps(&cfg);
        assert_eq!(r.lambda_sweep.len(), 5);
        assert_eq!(r.size_sweep.len(), 5);
        for &(_, n) in &r.lambda_sweep {
            assert!((0.0..=1.0).contains(&n));
        }
        for &(_, n) in &r.size_sweep {
            assert!((0.0..=1.0).contains(&n));
        }
    }
}
