//! Run-to-run stability of BNS (§IV-B1: "We have run our BNS for 10 times,
//! the standard deviations for each evaluation metric are consistently
//! less than 0.002").
//!
//! Repeats the 100K/MF BNS run across independent seeds and reports the
//! mean and standard deviation of every Table II metric.

use crate::common::cli::HarnessArgs;
use crate::common::config::{ModelKind, RunConfig};
use crate::common::csv::write_csv;
use crate::common::runner::{prepare_dataset, train_and_eval};
use crate::common::table::TextTable;
use bns_core::{BnsConfig, PriorKind, SamplerConfig};
use bns_data::DatasetPreset;
use bns_stats::quantile::{mean, std_dev};

/// Number of repeated runs (paper: 10; scaled runs default to 5 for time).
pub const DEFAULT_RUNS: usize = 5;

/// Runs `n_runs` seeds; returns per-metric samples, indexed
/// `[metric][run]` with metrics ordered `[P5, R5, N5, P10, R10, N10, P20,
/// R20, N20]`.
pub fn run_samples(cfg: &RunConfig, n_runs: usize) -> Vec<Vec<f64>> {
    let preset = DatasetPreset::Ml100k;
    // The dataset is fixed (same split as the paper's protocol); only the
    // training/sampling randomness varies per run.
    let prepared = prepare_dataset(preset, cfg);
    let sampler = SamplerConfig::Bns {
        config: BnsConfig::default(),
        prior: PriorKind::Popularity,
    };
    let mut samples: Vec<Vec<f64>> = (0..9).map(|_| Vec::with_capacity(n_runs)).collect();
    for run in 0..n_runs {
        let mut run_cfg = cfg.clone();
        run_cfg.seed = cfg.seed.wrapping_add(1000 + run as u64);
        let (report, _) = train_and_eval(&prepared, preset, ModelKind::Mf, &sampler, &run_cfg);
        for (i, row) in report.rows.iter().enumerate().take(3) {
            samples[i * 3].push(row.precision);
            samples[i * 3 + 1].push(row.recall);
            samples[i * 3 + 2].push(row.ndcg);
        }
    }
    samples
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let samples = run_samples(&cfg, DEFAULT_RUNS);
    let names = [
        "P@5", "R@5", "N@5", "P@10", "R@10", "N@10", "P@20", "R@20", "N@20",
    ];
    let mut out = String::from(
        "Stability — BNS on 100K / MF across independent seeds\n(paper §IV-B1: std < 0.002 over 10 runs)\n\n",
    );
    let mut table = TextTable::new(vec!["metric", "mean", "std", "runs"]);
    let mut csv_rows = Vec::new();
    let mut worst = 0.0f64;
    for (name, sample) in names.iter().zip(&samples) {
        let m = mean(sample).unwrap_or(0.0);
        let s = std_dev(sample).unwrap_or(0.0);
        worst = worst.max(s);
        table.row(vec![
            name.to_string(),
            format!("{m:.4}"),
            format!("{s:.4}"),
            sample.len().to_string(),
        ]);
        csv_rows.push(vec![name.to_string(), format!("{m:.6}"), format!("{s:.6}")]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nShape check: max metric std = {:.4} (paper reports < 0.002 at full scale;\nsmaller datasets have proportionally larger run-to-run noise)\n",
        worst
    ));
    if let Some(dir) = &args.csv {
        match write_csv(dir, "stability", &["metric", "mean", "std"], &csv_rows) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_per_metric_samples() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 2,
            dim: 8,
            threads: 2,
            ..RunConfig::default()
        };
        let samples = run_samples(&cfg, 2);
        assert_eq!(samples.len(), 9);
        for metric_runs in &samples {
            assert_eq!(metric_runs.len(), 2);
            for &v in metric_runs {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_metrics() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 3,
            dim: 8,
            threads: 2,
            ..RunConfig::default()
        };
        let samples = run_samples(&cfg, 2);
        // At least one of the nine metrics must differ across seeds.
        assert!(
            samples.iter().any(|runs| runs[0] != runs[1]),
            "independent seeds produced byte-identical metrics"
        );
    }
}
