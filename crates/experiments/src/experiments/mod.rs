//! One module per reproduced table/figure.

pub mod ablation;
pub mod contrastive;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod stability;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
