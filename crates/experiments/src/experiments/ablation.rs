//! Ablations of the repo's design choices (beyond the paper's own
//! ablations in Tables III/IV):
//!
//! 1. **ECDF strategy** — exact Eq. (16) vs fixed-stride subsampling. The
//!    subsample is the performance knob justified by Glivenko–Cantelli;
//!    the ablation shows the ranking cost of the approximation.
//! 2. **Sampling-loss order** — the paper's first-order Eq. (30) vs the
//!    second-order Taylor refinement (§VI acknowledges the approximation
//!    "has much room for improvement").
//! 3. **Exploration–exploitation** — the §VI trade-off, as an ε-greedy mix
//!    of max-info exploration and min-risk exploitation.

use crate::common::cli::HarnessArgs;
use crate::common::config::{ModelKind, RunConfig};
use crate::common::csv::write_csv;
use crate::common::runner::{prepare_dataset, train_and_eval};
use crate::common::table::TextTable;
use bns_core::bns::risk::RiskOrder;
use bns_core::bns::EcdfStrategy;
use bns_core::{BnsConfig, Criterion, PriorKind, SamplerConfig};
use bns_data::DatasetPreset;

/// The ablation lineup: `(group, label, sampler)`.
pub fn lineup() -> Vec<(&'static str, &'static str, SamplerConfig)> {
    let base = BnsConfig::default();
    let bns = |config: BnsConfig| SamplerConfig::Bns {
        config,
        prior: PriorKind::Popularity,
    };
    vec![
        ("ecdf", "exact (paper)", bns(base)),
        (
            "ecdf",
            "subsample 64",
            bns(BnsConfig {
                ecdf: EcdfStrategy::Subsample(64),
                ..base
            }),
        ),
        (
            "ecdf",
            "subsample 16",
            bns(BnsConfig {
                ecdf: EcdfStrategy::Subsample(16),
                ..base
            }),
        ),
        ("risk", "first order (paper)", bns(base)),
        (
            "risk",
            "second order",
            bns(BnsConfig {
                risk_order: RiskOrder::Second,
                ..base
            }),
        ),
        ("explore", "eps 0.0 (paper)", bns(base)),
        (
            "explore",
            "eps 0.1",
            bns(BnsConfig {
                criterion: Criterion::ExploreExploit { epsilon: 0.1 },
                ..base
            }),
        ),
        (
            "explore",
            "eps 0.3",
            bns(BnsConfig {
                criterion: Criterion::ExploreExploit { epsilon: 0.3 },
                ..base
            }),
        ),
    ]
}

/// Runs the ablations on 100K / MF; returns `(group, label, ndcg@10, ndcg@20)`.
pub fn run_rows(cfg: &RunConfig) -> Vec<(&'static str, &'static str, f64, f64)> {
    let preset = DatasetPreset::Ml100k;
    let prepared = prepare_dataset(preset, cfg);
    lineup()
        .into_iter()
        .map(|(group, label, sampler)| {
            let (report, _) = train_and_eval(&prepared, preset, ModelKind::Mf, &sampler, cfg);
            let n10 = report.at(10).map(|r| r.ndcg).unwrap_or(0.0);
            let n20 = report.at(20).map(|r| r.ndcg).unwrap_or(0.0);
            (group, label, n10, n20)
        })
        .collect()
}

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let rows = run_rows(&cfg);
    let mut out = String::from(
        "Ablations of design choices (100K / MF) — ECDF strategy, sampling-loss order,\nexploration mix. Rows marked (paper) are the configuration the paper uses.\n\n",
    );
    let mut table = TextTable::new(vec!["group", "variant", "NDCG@10", "NDCG@20"]);
    for (group, label, n10, n20) in &rows {
        table.row(vec![
            group.to_string(),
            label.to_string(),
            format!("{n10:.4}"),
            format!("{n20:.4}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nReading: subsampled ECDFs trade little NDCG for O(k) likelihood scans;\nsecond-order risk reshuffles mid-info candidates only; moderate exploration\n(ε ≈ 0.1) is roughly NDCG-neutral, matching the paper's remark that hard\nnegatives matter early.\n",
    );
    if let Some(dir) = &args.csv {
        let csv_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|(g, l, n10, n20)| {
                vec![
                    g.to_string(),
                    l.to_string(),
                    format!("{n10:.6}"),
                    format!("{n20:.6}"),
                ]
            })
            .collect();
        match write_csv(
            dir,
            "ablation",
            &["group", "variant", "ndcg10", "ndcg20"],
            &csv_rows,
        ) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_covers_three_groups() {
        let groups: std::collections::BTreeSet<&str> =
            lineup().iter().map(|(g, _, _)| *g).collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(lineup().len(), 8);
    }

    #[test]
    fn tiny_run_smoke() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 2,
            dim: 8,
            threads: 2,
            ..RunConfig::default()
        };
        let rows = run_rows(&cfg);
        assert_eq!(rows.len(), 8);
        for (_, _, n10, n20) in rows {
            assert!((0.0..=1.0).contains(&n10));
            assert!((0.0..=1.0).contains(&n20));
        }
    }
}
