//! Table III — study of BNS on MovieLens-100K / MF.
//!
//! Variants (§IV-C2):
//! * **BNS**   — standard: popularity prior, constant λ = 5.
//! * **BNS-1** — λ warm start `max(10 − 0.1·epoch, 2)`.
//! * **BNS-2** — RNS warm start of the sample information for the first
//!   epochs, then BNS.
//! * **BNS-3** — non-informative prior `1/n_items` (degenerates to DNS).
//! * **BNS-4** — occupation-enhanced prior.

use crate::common::cli::HarnessArgs;
use crate::common::config::{ModelKind, RunConfig};
use crate::common::csv::write_csv;
use crate::common::paper::TABLE3;
use crate::common::runner::{prepare_dataset, train_and_eval};
use crate::common::table::{fmt_vs, TextTable};
use bns_core::{BnsConfig, Criterion, LambdaSchedule, PriorKind, SamplerConfig};
use bns_data::DatasetPreset;

/// The Table III lineup: `(name, sampler config)`.
pub fn lineup(warmup_epochs: usize) -> Vec<(&'static str, SamplerConfig)> {
    let base = BnsConfig::default();
    vec![
        ("RNS", SamplerConfig::Rns),
        (
            "BNS",
            SamplerConfig::Bns {
                config: base,
                prior: PriorKind::Popularity,
            },
        ),
        (
            "BNS-1",
            SamplerConfig::Bns {
                config: BnsConfig {
                    lambda: LambdaSchedule::paper_warm_start(),
                    ..base
                },
                prior: PriorKind::Popularity,
            },
        ),
        (
            "BNS-2",
            SamplerConfig::Bns {
                config: BnsConfig {
                    warmup_epochs,
                    ..base
                },
                prior: PriorKind::Popularity,
            },
        ),
        (
            "BNS-3",
            SamplerConfig::Bns {
                config: base,
                prior: PriorKind::NonInformative,
            },
        ),
        (
            "BNS-4",
            SamplerConfig::Bns {
                config: base,
                prior: PriorKind::Occupation,
            },
        ),
    ]
}

/// Runs Table III and returns `(name, [9 metrics])` rows.
pub fn run_rows(cfg: &RunConfig) -> Vec<(&'static str, [f64; 9])> {
    let preset = DatasetPreset::Ml100k;
    let prepared = prepare_dataset(preset, cfg);
    // BNS-2 warm start: paper trains RNS "for some epochs"; use 20% of the run.
    let warmup = (cfg.epochs / 5).max(1);
    lineup(warmup)
        .into_iter()
        .map(|(name, sampler)| {
            let (report, _) = train_and_eval(&prepared, preset, ModelKind::Mf, &sampler, cfg);
            let mut metrics = [0.0; 9];
            for (i, row) in report.rows.iter().enumerate().take(3) {
                metrics[i * 3] = row.precision;
                metrics[i * 3 + 1] = row.recall;
                metrics[i * 3 + 2] = row.ndcg;
            }
            (name, metrics)
        })
        .collect()
}

/// Ensures the Criterion import is exercised by the lineup construction.
const _: Criterion = Criterion::MinRisk;

/// Full experiment entry point.
pub fn run(args: &HarnessArgs) -> String {
    let cfg = RunConfig::from_args(args);
    let rows = run_rows(&cfg);
    let mut out = String::from("Table III — study of BNS (100K / MF), measured (paper)\n\n");
    let mut table = TextTable::new(vec![
        "method", "P@5", "R@5", "N@5", "P@10", "R@10", "N@10", "P@20", "R@20", "N@20",
    ]);
    for (name, metrics) in &rows {
        let paper = TABLE3.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        let mut cells = vec![name.to_string()];
        for i in 0..9 {
            cells.push(fmt_vs(metrics[i], paper.map(|p| p[i])));
        }
        table.row(cells);
    }
    out.push_str(&table.render());

    // Shape summary.
    let ndcg20 = |name: &str| rows.iter().find(|(n, _)| *n == name).map(|(_, m)| m[8]);
    if let (Some(rns), Some(bns), Some(bns3)) = (ndcg20("RNS"), ndcg20("BNS"), ndcg20("BNS-3")) {
        out.push_str("\nShape checks:\n");
        out.push_str(&format!(
            "  BNS > RNS on NDCG@20:   {} ({:.4} vs {:.4}; paper: yes)\n",
            bns > rns,
            bns,
            rns
        ));
        out.push_str(&format!(
            "  BNS > BNS-3 (prior helps): {} ({:.4} vs {:.4}; paper: yes)\n",
            bns > bns3,
            bns,
            bns3
        ));
    }

    if let Some(dir) = &args.csv {
        let header = [
            "method", "p5", "r5", "n5", "p10", "r10", "n10", "p20", "r20", "n20",
        ];
        let csv_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|(name, m)| {
                let mut row = vec![name.to_string()];
                row.extend(m.iter().map(|v| format!("{v:.6}")));
                row
            })
            .collect();
        match write_csv(dir, "table3", &header, &csv_rows) {
            Ok(path) => out.push_str(&format!("\ncsv: {}\n", path.display())),
            Err(e) => out.push_str(&format!("\ncsv write failed: {e}\n")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_paper_variants() {
        let names: Vec<&str> = lineup(5).iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["RNS", "BNS", "BNS-1", "BNS-2", "BNS-3", "BNS-4"]
        );
    }

    #[test]
    fn tiny_run_produces_six_rows() {
        let cfg = RunConfig {
            scale: 0.05,
            epochs: 2,
            dim: 8,
            threads: 2,
            ..RunConfig::default()
        };
        let rows = run_rows(&cfg);
        assert_eq!(rows.len(), 6);
        for (_, m) in rows {
            assert!(m.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }
}
