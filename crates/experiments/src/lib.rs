//! # bns-experiments — the table/figure regeneration harness
//!
//! One binary per table and figure of the paper's evaluation section
//! (`cargo run --release -p bns-experiments --bin <name>`):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table I — dataset statistics |
//! | `table2` | Table II — recommendation performance, 6 samplers × 2 models × 3 datasets |
//! | `table3` | Table III — BNS variant study (BNS-1..BNS-4) |
//! | `table4` | Table IV — asymptotic optimal sampler under the ideal prior |
//! | `fig1`   | Fig. 1 — real TN/FN score distributions across epochs |
//! | `fig2`   | Fig. 2 — theoretical order-statistic densities |
//! | `fig3`   | Fig. 3 — the unbias(F, P_fn) surface |
//! | `fig4`   | Fig. 4 — sampling quality (TNR / INF) per epoch |
//! | `fig5`   | Fig. 5 — sensitivity to λ and |Mᵤ| |
//!
//! Every binary accepts `--scale <f>` (default 0.15; `--scale 1.0` is paper
//! scale), `--epochs <n>`, `--seed <n>`, `--threads <n>` (evaluation),
//! `--train-threads <n>` (hogwild training shards for observer-free MF
//! runs; default 1 = serial bit-exact engine) and `--csv <dir>` (write
//! machine-readable series next to the pretty tables). Measured numbers
//! are printed beside the paper's published values wherever the paper
//! reports them.

pub mod common;
pub mod experiments;

pub use common::cli::HarnessArgs;
pub use common::config::{ModelKind, RunConfig};
pub use common::runner;
