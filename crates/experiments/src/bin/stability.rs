//! Runs the stability experiment (see bns-experiments crate docs).

fn main() {
    let args = bns_experiments::HarnessArgs::from_env();
    print!("{}", bns_experiments::experiments::stability::run(&args));
}
