//! Regenerates the paper's table3 (see bns-experiments crate docs).

fn main() {
    let args = bns_experiments::HarnessArgs::from_env();
    print!("{}", bns_experiments::experiments::table3::run(&args));
}
