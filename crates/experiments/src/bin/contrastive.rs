//! Runs the contrastive extension experiment (see bns-experiments crate docs).

fn main() {
    let args = bns_experiments::HarnessArgs::from_env();
    print!("{}", bns_experiments::experiments::contrastive::run(&args));
}
