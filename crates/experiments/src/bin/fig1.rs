//! Regenerates the paper's fig1 (see bns-experiments crate docs).

fn main() {
    let args = bns_experiments::HarnessArgs::from_env();
    print!("{}", bns_experiments::experiments::fig1::run(&args));
}
