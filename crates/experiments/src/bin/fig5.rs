//! Regenerates the paper's fig5 (see bns-experiments crate docs).

fn main() {
    let args = bns_experiments::HarnessArgs::from_env();
    print!("{}", bns_experiments::experiments::fig5::run(&args));
}
