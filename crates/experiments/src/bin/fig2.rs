//! Regenerates the paper's fig2 (see bns-experiments crate docs).

fn main() {
    let args = bns_experiments::HarnessArgs::from_env();
    print!("{}", bns_experiments::experiments::fig2::run(&args));
}
