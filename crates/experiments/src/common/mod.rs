//! Shared harness infrastructure.

pub mod cli;
pub mod config;
pub mod csv;
pub mod paper;
pub mod runner;
pub mod table;
