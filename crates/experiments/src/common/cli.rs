//! Minimal command-line parsing for the experiment binaries.
//!
//! No external CLI crate is in the approved dependency set, and the flags
//! are few, so a small hand parser suffices:
//!
//! ```text
//! --scale <f64>         dataset scale factor (1.0 = paper scale; default 0.15)
//! --epochs <n>          training epochs (default 40; paper uses 100)
//! --seed <n>            master RNG seed (default 42)
//! --threads <n>         evaluation threads (default 4)
//! --train-threads <n>   hogwild training shards for MF runs (default 1 =
//!                       serial bit-exact; > 1 trades the bit-exact trace
//!                       for multi-core throughput)
//! --k-negatives <n>     negatives sampled per positive pair (default 1 =
//!                       the paper's Algorithm 1; > 1 is the multi-negative
//!                       batch workload)
//! --csv <dir>           also write CSV series into <dir>
//! --save-artifact <p>   freeze each trained model into a bns-serve
//!                       ModelArtifact at <p> (multi-run binaries
//!                       overwrite: the last completed run wins)
//! --quick               tiny preset for smoke tests (scale 0.08, 12 epochs)
//! ```

use std::path::PathBuf;

/// Parsed harness arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Dataset scale factor (1.0 = paper scale).
    pub scale: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Evaluation threads.
    pub threads: usize,
    /// Hogwild training shards for MF runs (1 = serial bit-exact engine).
    pub train_threads: usize,
    /// Negatives per positive pair (1 = the paper's Algorithm 1).
    pub k_negatives: usize,
    /// Optional CSV output directory.
    pub csv: Option<PathBuf>,
    /// Optional path to freeze trained models into (`bns-serve` artifact).
    pub save_artifact: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: 0.15,
            epochs: 40,
            seed: 42,
            threads: 4,
            train_threads: 1,
            k_negatives: 1,
            csv: None,
            save_artifact: None,
        }
    }
}

impl HarnessArgs {
    /// Parses from an iterator of argument strings (excluding `argv[0]`).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Self::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--scale" => out.scale = take_value(&mut iter, "--scale")?,
                "--epochs" => out.epochs = take_value(&mut iter, "--epochs")?,
                "--seed" => out.seed = take_value(&mut iter, "--seed")?,
                "--threads" => out.threads = take_value(&mut iter, "--threads")?,
                "--train-threads" => out.train_threads = take_value(&mut iter, "--train-threads")?,
                "--k-negatives" => out.k_negatives = take_value(&mut iter, "--k-negatives")?,
                "--csv" => {
                    let dir = iter.next().ok_or("--csv requires a directory")?;
                    out.csv = Some(PathBuf::from(dir));
                }
                "--save-artifact" => {
                    let path = iter.next().ok_or("--save-artifact requires a path")?;
                    out.save_artifact = Some(PathBuf::from(path));
                }
                "--quick" => {
                    out.scale = 0.08;
                    out.epochs = 12;
                }
                "--help" | "-h" => return Err(Self::usage().to_string()),
                other => return Err(format!("unknown flag `{other}`\n{}", Self::usage())),
            }
        }
        if !(out.scale > 0.0 && out.scale <= 1.0) {
            return Err("--scale must be in (0, 1]".into());
        }
        if out.epochs == 0 {
            return Err("--epochs must be > 0".into());
        }
        if out.threads == 0 {
            return Err("--threads must be > 0".into());
        }
        if out.train_threads == 0 {
            return Err("--train-threads must be > 0".into());
        }
        if out.k_negatives == 0 {
            return Err("--k-negatives must be > 0".into());
        }
        Ok(out)
    }

    /// Parses from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Usage text.
    pub fn usage() -> &'static str {
        "usage: <bin> [--scale F] [--epochs N] [--seed N] [--threads N] [--train-threads N] [--k-negatives N] [--csv DIR] [--save-artifact PATH] [--quick]"
    }
}

fn take_value<T: std::str::FromStr, I: Iterator<Item = String>>(
    iter: &mut I,
    flag: &str,
) -> Result<T, String> {
    let raw = iter
        .next()
        .ok_or_else(|| format!("{flag} requires a value"))?;
    raw.parse::<T>()
        .map_err(|_| format!("invalid value `{raw}` for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, HarnessArgs::default());
    }

    #[test]
    fn full_flag_set() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--epochs",
            "77",
            "--seed",
            "9",
            "--threads",
            "2",
            "--train-threads",
            "4",
            "--k-negatives",
            "3",
            "--csv",
            "/tmp/x",
            "--save-artifact",
            "/tmp/model.bnsa",
        ])
        .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.epochs, 77);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 2);
        assert_eq!(a.train_threads, 4);
        assert_eq!(a.k_negatives, 3);
        assert_eq!(a.csv, Some(PathBuf::from("/tmp/x")));
        assert_eq!(a.save_artifact, Some(PathBuf::from("/tmp/model.bnsa")));
    }

    #[test]
    fn quick_preset() {
        let a = parse(&["--quick"]).unwrap();
        assert!(a.scale < 0.1);
        assert!(a.epochs <= 15);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "0"]).is_err());
        assert!(parse(&["--scale", "1.5"]).is_err());
        assert!(parse(&["--epochs", "0"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--train-threads", "0"]).is_err());
        assert!(parse(&["--k-negatives", "0"]).is_err());
        assert!(parse(&["--save-artifact"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }
}
