//! Tiny CSV writer for machine-readable experiment outputs.

use std::io::Write;
use std::path::Path;

/// Writes `rows` (plus a header) to `<dir>/<name>.csv`, creating the
/// directory if needed. Cells containing commas/quotes/newlines are quoted.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let file = std::fs::File::create(&path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(
        w,
        "{}",
        header
            .iter()
            .map(|c| escape(c))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            w,
            "{}",
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    w.flush()?;
    Ok(path)
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_escapes() {
        let dir = std::env::temp_dir().join("bns_csv_test");
        let rows = vec![
            vec!["a".to_string(), "1,5".to_string()],
            vec!["b\"q".to_string(), "2".to_string()],
        ];
        let path = write_csv(&dir, "t", &["name", "value"], &rows).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "name,value\na,\"1,5\"\n\"b\"\"q\",2\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_rows_is_header_only() {
        let dir = std::env::temp_dir().join("bns_csv_test");
        let path = write_csv(&dir, "empty", &["x"], &[]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n");
        std::fs::remove_file(path).ok();
    }
}
