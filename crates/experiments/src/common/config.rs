//! Run configuration shared by all experiment binaries.

use crate::common::cli::HarnessArgs;
use bns_data::{DatasetPreset, Scale};
use serde::{Deserialize, Serialize};

/// Which CF model to train (§IV-A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Matrix factorization, batch size 1 (paper's MF setup).
    Mf,
    /// LightGCN with 1 layer (paper's setup), batched.
    LightGcn,
}

impl ModelKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Mf => "MF",
            ModelKind::LightGcn => "LightGCN",
        }
    }

    /// The paper's batch size for this model and dataset: 1 for MF;
    /// 128 for LightGCN (1024 on MovieLens-1M).
    pub fn paper_batch_size(&self, preset: DatasetPreset) -> usize {
        match self {
            ModelKind::Mf => 1,
            ModelKind::LightGcn => match preset {
                DatasetPreset::Ml1m => 1024,
                _ => 128,
            },
        }
    }
}

/// A fully resolved experiment run configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Dataset scale factor.
    pub scale: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Evaluation threads.
    pub threads: usize,
    /// Hogwild training shards for MF runs (1 = serial bit-exact engine;
    /// > 1 uses `bns_core::parallel::ParallelTrainer`).
    pub train_threads: usize,
    /// Negatives sampled per positive pair (paper: 1; > 1 feeds the
    /// multi-negative `TripleBatch` workload).
    pub k_negatives: usize,
    /// Embedding dimensionality (paper: 32).
    pub dim: usize,
    /// Embedding init standard deviation.
    pub init_std: f64,
    /// LightGCN propagation layers (paper: 1).
    pub gcn_layers: usize,
    /// Ranking cutoffs (paper: 5, 10, 20).
    pub ks: Vec<usize>,
    /// Optional path to freeze each trained model into a `bns-serve`
    /// [`ModelArtifact`](bns_serve::ModelArtifact). Multi-run binaries
    /// overwrite it per run; the last completed run's model wins.
    pub save_artifact: Option<std::path::PathBuf>,
}

impl RunConfig {
    /// Builds from CLI args with the paper's model hyperparameters.
    pub fn from_args(args: &HarnessArgs) -> Self {
        Self {
            scale: args.scale,
            epochs: args.epochs,
            seed: args.seed,
            threads: args.threads,
            train_threads: args.train_threads,
            k_negatives: args.k_negatives,
            dim: 32,
            init_std: 0.1,
            gcn_layers: 1,
            ks: vec![5, 10, 20],
            save_artifact: args.save_artifact.clone(),
        }
    }

    /// The [`Scale`] for dataset generation.
    pub fn dataset_scale(&self) -> Scale {
        if (self.scale - 1.0).abs() < 1e-12 {
            Scale::Paper
        } else {
            Scale::Fraction(self.scale)
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::from_args(&HarnessArgs::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_sizes_match_paper() {
        assert_eq!(ModelKind::Mf.paper_batch_size(DatasetPreset::Ml100k), 1);
        assert_eq!(
            ModelKind::LightGcn.paper_batch_size(DatasetPreset::Ml100k),
            128
        );
        assert_eq!(
            ModelKind::LightGcn.paper_batch_size(DatasetPreset::Ml1m),
            1024
        );
        assert_eq!(
            ModelKind::LightGcn.paper_batch_size(DatasetPreset::YahooR3),
            128
        );
    }

    #[test]
    fn scale_resolution() {
        let paper = RunConfig {
            scale: 1.0,
            ..RunConfig::default()
        };
        assert_eq!(paper.dataset_scale(), Scale::Paper);
        let small = RunConfig {
            scale: 0.25,
            ..RunConfig::default()
        };
        assert_eq!(small.dataset_scale(), Scale::Fraction(0.25));
    }

    #[test]
    fn defaults_follow_paper_hyperparameters() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.dim, 32);
        assert_eq!(cfg.gcn_layers, 1);
        assert_eq!(cfg.ks, vec![5, 10, 20]);
    }
}
