//! The paper's published numbers, embedded for side-by-side reporting.
//!
//! Metric tuples are `[P@5, R@5, N@5, P@10, R@10, N@10, P@20, R@20, N@20]`,
//! transcribed from Tables II–IV of arXiv:2204.06520v3.

// Transcribed metric values occasionally coincide with math constants
// (0.4342 ≈ log10(e)); they are data, not computation.
#![allow(clippy::approx_constant)]

/// A Table II row: (dataset, model, method, metrics).
pub type Table2Row = (&'static str, &'static str, &'static str, [f64; 9]);

/// Table II — recommendation performance of all samplers.
pub const TABLE2: &[Table2Row] = &[
    // MovieLens-100K / MF
    ("100K", "MF", "RNS", [0.3900, 0.1301, 0.4143, 0.3363, 0.2164, 0.3967, 0.2724, 0.3298, 0.3962]),
    ("100K", "MF", "PNS", [0.2647, 0.0864, 0.2694, 0.2329, 0.1475, 0.2637, 0.1949, 0.2374, 0.2709]),
    ("100K", "MF", "AOBPR", [0.3970, 0.1375, 0.4186, 0.3308, 0.2165, 0.3942, 0.2700, 0.3369, 0.3980]),
    ("100K", "MF", "DNS", [0.4053, 0.1414, 0.4314, 0.3348, 0.2214, 0.4042, 0.2734, 0.3413, 0.4069]),
    ("100K", "MF", "SRNS", [0.3951, 0.1342, 0.4176, 0.3394, 0.2174, 0.3998, 0.2747, 0.3374, 0.4013]),
    ("100K", "MF", "BNS", [0.4205, 0.1467, 0.4558, 0.3463, 0.2290, 0.4217, 0.2762, 0.3466, 0.4176]),
    // MovieLens-100K / LightGCN
    ("100K", "LightGCN", "RNS", [0.4261, 0.1453, 0.4544, 0.3571, 0.2319, 0.4275, 0.2867, 0.3490, 0.4248]),
    ("100K", "LightGCN", "PNS", [0.3527, 0.1266, 0.3816, 0.3015, 0.2117, 0.3660, 0.2461, 0.3306, 0.3742]),
    ("100K", "LightGCN", "AOBPR", [0.3911, 0.1407, 0.4200, 0.3315, 0.2276, 0.4007, 0.2680, 0.3505, 0.4064]),
    ("100K", "LightGCN", "DNS", [0.4278, 0.1475, 0.4590, 0.3612, 0.2336, 0.4331, 0.2917, 0.3595, 0.4335]),
    ("100K", "LightGCN", "SRNS", [0.4195, 0.1440, 0.4509, 0.3564, 0.2333, 0.4275, 0.2834, 0.3520, 0.4244]),
    ("100K", "LightGCN", "BNS", [0.4318, 0.1518, 0.4640, 0.3671, 0.2410, 0.4368, 0.2875, 0.3608, 0.4383]),
    // MovieLens-1M / MF
    ("1M", "MF", "RNS", [0.3843, 0.0855, 0.4027, 0.3353, 0.1430, 0.3737, 0.2798, 0.2244, 0.3572]),
    ("1M", "MF", "PNS", [0.3461, 0.0753, 0.3634, 0.3004, 0.1250, 0.3356, 0.2502, 0.1979, 0.3192]),
    ("1M", "MF", "AOBPR", [0.3946, 0.0954, 0.4135, 0.3416, 0.1549, 0.3837, 0.2857, 0.2442, 0.3714]),
    ("1M", "MF", "DNS", [0.4066, 0.0991, 0.4272, 0.3521, 0.1620, 0.3965, 0.2945, 0.2537, 0.3838]),
    ("1M", "MF", "SRNS", [0.3955, 0.0934, 0.4225, 0.3408, 0.1609, 0.4042, 0.2779, 0.2431, 0.3974]),
    ("1M", "MF", "BNS", [0.4207, 0.1062, 0.4324, 0.3518, 0.1703, 0.4191, 0.3045, 0.2614, 0.4002]),
    // MovieLens-1M / LightGCN
    ("1M", "LightGCN", "RNS", [0.4095, 0.0953, 0.4305, 0.3512, 0.1547, 0.3985, 0.2915, 0.2405, 0.3781]),
    ("1M", "LightGCN", "PNS", [0.3658, 0.0907, 0.3855, 0.3152, 0.1486, 0.3564, 0.2608, 0.2314, 0.3440]),
    ("1M", "LightGCN", "AOBPR", [0.4073, 0.0997, 0.4286, 0.3535, 0.1626, 0.3982, 0.2949, 0.2536, 0.3849]),
    ("1M", "LightGCN", "DNS", [0.4130, 0.0972, 0.4342, 0.3552, 0.1577, 0.4002, 0.2958, 0.2468, 0.3840]),
    ("1M", "LightGCN", "SRNS", [0.4026, 0.0973, 0.4239, 0.3515, 0.1526, 0.3953, 0.2922, 0.2524, 0.3815]),
    ("1M", "LightGCN", "BNS", [0.4228, 0.1087, 0.4438, 0.3639, 0.1612, 0.4088, 0.3025, 0.2527, 0.3917]),
    // Yahoo!-R3 / MF
    ("Yahoo", "MF", "RNS", [0.1196, 0.0875, 0.1326, 0.0935, 0.1367, 0.1401, 0.0695, 0.2015, 0.1665]),
    ("Yahoo", "MF", "PNS", [0.1186, 0.0876, 0.1301, 0.0927, 0.1360, 0.1378, 0.0688, 0.2011, 0.1644]),
    ("Yahoo", "MF", "AOBPR", [0.1012, 0.0741, 0.1115, 0.0798, 0.1165, 0.1184, 0.0607, 0.1778, 0.1443]),
    ("Yahoo", "MF", "DNS", [0.1251, 0.0917, 0.1390, 0.0957, 0.1399, 0.1449, 0.0697, 0.2020, 0.1697]),
    ("Yahoo", "MF", "SRNS", [0.1141, 0.0855, 0.1285, 0.0904, 0.1358, 0.1383, 0.0678, 0.2025, 0.1655]),
    ("Yahoo", "MF", "BNS", [0.1303, 0.0975, 0.1470, 0.1002, 0.1485, 0.1542, 0.0711, 0.2094, 0.1783]),
    // Yahoo!-R3 / LightGCN
    ("Yahoo", "LightGCN", "RNS", [0.1479, 0.1101, 0.1693, 0.1126, 0.1669, 0.1760, 0.0814, 0.2389, 0.2047]),
    ("Yahoo", "LightGCN", "PNS", [0.1076, 0.0797, 0.1214, 0.0809, 0.1185, 0.1254, 0.0590, 0.1708, 0.1464]),
    ("Yahoo", "LightGCN", "AOBPR", [0.1462, 0.1120, 0.1635, 0.1048, 0.1552, 0.1612, 0.0763, 0.2229, 0.1886]),
    ("Yahoo", "LightGCN", "DNS", [0.1530, 0.1137, 0.1743, 0.1148, 0.1697, 0.1800, 0.0829, 0.2433, 0.2089]),
    ("Yahoo", "LightGCN", "SRNS", [0.1457, 0.1092, 0.1668, 0.1121, 0.1636, 0.1735, 0.0799, 0.2352, 0.2017]),
    ("Yahoo", "LightGCN", "BNS", [0.1550, 0.1157, 0.1768, 0.1169, 0.1729, 0.1827, 0.0837, 0.2459, 0.2117]),
];

/// Table III — BNS variants on MovieLens-100K / MF.
pub const TABLE3: &[(&str, [f64; 9])] = &[
    ("RNS", [0.3900, 0.1301, 0.4143, 0.3363, 0.2164, 0.3967, 0.2724, 0.3298, 0.3962]),
    ("BNS", [0.4205, 0.1467, 0.4558, 0.3463, 0.2290, 0.4217, 0.2762, 0.3466, 0.4176]),
    ("BNS-1", [0.4237, 0.1471, 0.4551, 0.3495, 0.2305, 0.4238, 0.2762, 0.3495, 0.4197]),
    ("BNS-2", [0.4148, 0.1456, 0.4449, 0.3411, 0.2245, 0.4132, 0.2738, 0.3434, 0.4125]),
    ("BNS-3", [0.4048, 0.1392, 0.4266, 0.3423, 0.2282, 0.4043, 0.2720, 0.3406, 0.4030]),
    ("BNS-4", [0.4262, 0.1478, 0.4566, 0.3486, 0.2305, 0.4235, 0.2792, 0.3520, 0.4216]),
];

/// Table IV — asymptotic optimal sampler (ideal prior) on 100K / MF.
/// `usize::MAX` encodes |Mᵤ| = |I⁻ᵤ| ("all").
pub const TABLE4: &[(usize, [f64; 9])] = &[
    (1, [0.3900, 0.1301, 0.4143, 0.3363, 0.2164, 0.3967, 0.2724, 0.3298, 0.3962]),
    (3, [0.4909, 0.1567, 0.5211, 0.4220, 0.2565, 0.4942, 0.3366, 0.3872, 0.4856]),
    (5, [0.5109, 0.1612, 0.5422, 0.4329, 0.2602, 0.5092, 0.3456, 0.3925, 0.4992]),
    (10, [0.5351, 0.1696, 0.5685, 0.4589, 0.2722, 0.5365, 0.3663, 0.4081, 0.5245]),
    (20, [0.5760, 0.1828, 0.6070, 0.4885, 0.2875, 0.5695, 0.3830, 0.4196, 0.5498]),
    (50, [0.6239, 0.1989, 0.6599, 0.5252, 0.3049, 0.6146, 0.4031, 0.4312, 0.5843]),
    (100, [0.6509, 0.2104, 0.6898, 0.5382, 0.3125, 0.6346, 0.4053, 0.4321, 0.5971]),
    (500, [0.6661, 0.2183, 0.7128, 0.5412, 0.3131, 0.6487, 0.4041, 0.4300, 0.6076]),
    (usize::MAX, [0.6674, 0.2184, 0.7133, 0.5429, 0.3140, 0.6495, 0.4041, 0.4292, 0.6073]),
];

/// Looks up the paper's Table II metrics for a combination.
pub fn table2_lookup(dataset: &str, model: &str, method: &str) -> Option<[f64; 9]> {
    TABLE2
        .iter()
        .find(|(d, m, s, _)| *d == dataset && *m == model && *s == method)
        .map(|(_, _, _, v)| *v)
}

/// Fig. 5's sweep values: λ ∈ {0.1, 1, 5, 10, 15}, |Mᵤ| ∈ {1, 3, 5, 10, 15};
/// the paper reports NDCG@20 peaking at λ = 5 and |Mᵤ| ∈ {5, 10}.
pub const FIG5_LAMBDAS: [f64; 5] = [0.1, 1.0, 5.0, 10.0, 15.0];
/// Candidate-set sizes swept in Fig. 5.
pub const FIG5_SIZES: [usize; 5] = [1, 3, 5, 10, 15];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_full_grid() {
        assert_eq!(TABLE2.len(), 3 * 2 * 6);
        for ds in ["100K", "1M", "Yahoo"] {
            for model in ["MF", "LightGCN"] {
                for method in ["RNS", "PNS", "AOBPR", "DNS", "SRNS", "BNS"] {
                    assert!(
                        table2_lookup(ds, model, method).is_some(),
                        "missing {ds}/{model}/{method}"
                    );
                }
            }
        }
    }

    #[test]
    fn bns_wins_almost_everywhere_in_paper() {
        // Sanity of the transcription: BNS is best on NDCG@10 in every
        // block except none (the paper's two second-bests are on other
        // metrics).
        for ds in ["100K", "1M", "Yahoo"] {
            for model in ["MF", "LightGCN"] {
                let bns = table2_lookup(ds, model, "BNS").unwrap()[5];
                for method in ["RNS", "PNS", "AOBPR", "DNS", "SRNS"] {
                    let other = table2_lookup(ds, model, method).unwrap()[5];
                    assert!(
                        bns >= other,
                        "{ds}/{model}: BNS NDCG@10 {bns} < {method} {other}"
                    );
                }
            }
        }
    }

    #[test]
    fn table4_is_monotone_in_candidate_size_on_ndcg5() {
        let mut prev = 0.0;
        for (_, row) in TABLE4 {
            assert!(row[2] >= prev - 1e-9, "NDCG@5 not monotone");
            prev = row[2];
        }
    }

    #[test]
    fn rns_equals_size_one_bns_in_paper_tables() {
        // Table IV's first row is literally the RNS row of Table II.
        let rns = table2_lookup("100K", "MF", "RNS").unwrap();
        assert_eq!(TABLE4[0].1, rns);
        assert_eq!(TABLE3[0].1, rns);
    }
}
