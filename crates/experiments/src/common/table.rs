//! Aligned plain-text tables for terminal output.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given header cells.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with single-space-padded columns and a rule under the header.
    pub fn render(&self) -> String {
        let n_cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; n_cols];
        let measure = |row: &[String], widths: &mut [usize]| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&self.header, &mut widths);
        for row in &self.rows {
            measure(row, &mut widths);
        }

        let mut out = String::new();
        let render_row = |row: &[String], widths: &[usize], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = row.get(i).unwrap_or(&empty);
                out.push_str(cell);
                for _ in cell.chars().count()..*width {
                    out.push(' ');
                }
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a metric to the paper's 4 decimal places.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats "measured (paper)" cells for side-by-side comparison.
pub fn fmt_vs(measured: f64, paper: Option<f64>) -> String {
    match paper {
        Some(p) => format!("{measured:.4} ({p:.4})"),
        None => format!("{measured:.4}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both value cells start in the same column.
        let col = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find('2').unwrap(), col);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        let s = t.render();
        assert!(s.lines().count() == 3);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt4(0.123456), "0.1235");
        assert_eq!(fmt_vs(0.5, Some(0.4205)), "0.5000 (0.4205)");
        assert_eq!(fmt_vs(0.5, None), "0.5000");
    }
}
