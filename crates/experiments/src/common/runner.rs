//! Glue: dataset preparation, model construction, train-and-eval plumbing.
//!
//! Observer-free runs (the table binaries' bulk training) honor
//! [`RunConfig::train_threads`]: MF runs with `train_threads > 1` go
//! through the sharded hogwild engine
//! ([`bns_core::parallel::ParallelTrainer`]). Observer-driven runs (the
//! figure binaries' TNR/INF and score-distribution probes) always use the
//! serial engine, because per-triple callbacks are a serial-engine
//! contract.

use crate::common::config::{ModelKind, RunConfig};
use bns_core::{
    build_sampler, train, NegativeSampler, NoopObserver, ParallelConfig, ParallelTrainer,
    SamplerConfig, TrainConfig, TrainObserver, TrainStats,
};
use bns_data::synthetic::generate;
use bns_data::{split_random, Dataset, DatasetPreset, Occupations, SplitConfig};
use bns_eval::{evaluate_ranking, RankingReport};
use bns_model::snapshot::{SnapshotKind, SnapshotScorer};
use bns_model::{Embedding, LightGcn, MatrixFactorization, PairwiseModel, Scorer};
use bns_serve::ModelArtifact;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated dataset plus its side information.
pub struct PreparedDataset {
    /// The train/test dataset.
    pub dataset: Dataset,
    /// Synthetic occupation labels (for the BNS-4 prior).
    pub occupations: Occupations,
}

/// Generates the synthetic stand-in for `preset` at the configured scale
/// and splits it 80/20 (the paper's protocol).
pub fn prepare_dataset(preset: DatasetPreset, cfg: &RunConfig) -> PreparedDataset {
    let gen_cfg = preset.config(cfg.dataset_scale(), cfg.seed);
    let synthetic = generate(&gen_cfg).expect("valid preset config");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5711);
    let (train_set, test_set) =
        split_random(&synthetic.interactions, SplitConfig::default(), &mut rng)
            .expect("split of non-empty dataset");
    let dataset = Dataset::new(
        format!("{} (synthetic, scale {:.2})", preset.name(), cfg.scale),
        train_set,
        test_set,
    )
    .expect("split produces disjoint train/test");
    PreparedDataset {
        dataset,
        occupations: synthetic.occupations,
    }
}

/// Either of the paper's two CF models behind one concrete type, so the
/// generic trainer can be driven from runtime configuration.
pub enum AnyModel {
    /// BPR matrix factorization.
    Mf(MatrixFactorization),
    /// LightGCN.
    Gcn(LightGcn),
}

impl AnyModel {
    /// Builds the model for `kind` with the paper's hyperparameters.
    pub fn build(kind: ModelKind, dataset: &Dataset, cfg: &RunConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6d0de1);
        match kind {
            ModelKind::Mf => AnyModel::Mf(
                MatrixFactorization::new(
                    dataset.n_users(),
                    dataset.n_items(),
                    cfg.dim,
                    cfg.init_std,
                    &mut rng,
                )
                .expect("valid MF config"),
            ),
            ModelKind::LightGcn => AnyModel::Gcn(
                LightGcn::new(
                    dataset.train(),
                    cfg.dim,
                    cfg.gcn_layers,
                    cfg.init_std,
                    &mut rng,
                )
                .expect("valid LightGCN config"),
            ),
        }
    }
}

impl Scorer for AnyModel {
    fn n_users(&self) -> u32 {
        match self {
            AnyModel::Mf(m) => m.n_users(),
            AnyModel::Gcn(m) => m.n_users(),
        }
    }

    fn n_items(&self) -> u32 {
        match self {
            AnyModel::Mf(m) => m.n_items(),
            AnyModel::Gcn(m) => m.n_items(),
        }
    }

    fn score(&self, u: u32, i: u32) -> f32 {
        match self {
            AnyModel::Mf(m) => m.score(u, i),
            AnyModel::Gcn(m) => m.score(u, i),
        }
    }

    fn score_all(&self, u: u32, out: &mut [f32]) {
        match self {
            AnyModel::Mf(m) => m.score_all(u, out),
            AnyModel::Gcn(m) => m.score_all(u, out),
        }
    }

    fn score_items(&self, u: u32, items: &[u32], out: &mut [f32]) {
        match self {
            AnyModel::Mf(m) => m.score_items(u, items, out),
            AnyModel::Gcn(m) => m.score_items(u, items, out),
        }
    }
}

impl SnapshotScorer for AnyModel {
    fn snapshot_kind(&self) -> SnapshotKind {
        match self {
            AnyModel::Mf(m) => m.snapshot_kind(),
            AnyModel::Gcn(m) => m.snapshot_kind(),
        }
    }

    fn snapshot_embeddings(&self) -> bns_model::Result<(Embedding, Embedding)> {
        match self {
            AnyModel::Mf(m) => m.snapshot_embeddings(),
            AnyModel::Gcn(m) => m.snapshot_embeddings(),
        }
    }
}

impl PairwiseModel for AnyModel {
    fn begin_epoch(&mut self, epoch: usize) {
        match self {
            AnyModel::Mf(m) => m.begin_epoch(epoch),
            AnyModel::Gcn(m) => m.begin_epoch(epoch),
        }
    }

    fn begin_batch(&mut self) {
        match self {
            AnyModel::Mf(m) => m.begin_batch(),
            AnyModel::Gcn(m) => m.begin_batch(),
        }
    }

    fn accumulate_triple(&mut self, u: u32, pos: u32, neg: u32, lr: f32, reg: f32) -> f32 {
        match self {
            AnyModel::Mf(m) => m.accumulate_triple(u, pos, neg, lr, reg),
            AnyModel::Gcn(m) => m.accumulate_triple(u, pos, neg, lr, reg),
        }
    }

    fn update_batch(
        &mut self,
        batch: &bns_model::TripleBatch,
        lr: f32,
        reg: f32,
        infos: &mut Vec<f32>,
    ) {
        // Forward explicitly so MF keeps its blocked group-update path (the
        // trait default would silently fall back to per-triple loops).
        match self {
            AnyModel::Mf(m) => m.update_batch(batch, lr, reg, infos),
            AnyModel::Gcn(m) => m.update_batch(batch, lr, reg, infos),
        }
    }

    fn end_batch(&mut self, lr: f32, reg: f32) {
        match self {
            AnyModel::Mf(m) => m.end_batch(lr, reg),
            AnyModel::Gcn(m) => m.end_batch(lr, reg),
        }
    }
}

/// The paper's [`TrainConfig`] for a model kind / dataset / run config.
pub fn paper_train_config(kind: ModelKind, preset: DatasetPreset, cfg: &RunConfig) -> TrainConfig {
    let base = match kind {
        ModelKind::Mf => TrainConfig::paper_mf(cfg.epochs, cfg.seed),
        ModelKind::LightGcn => {
            TrainConfig::paper_lightgcn(cfg.epochs, kind.paper_batch_size(preset), cfg.seed)
        }
    };
    TrainConfig {
        k_negatives: cfg.k_negatives,
        ..base
    }
}

/// Trains `kind` with `sampler_cfg` on the prepared dataset, driving the
/// provided observer, and returns the trained model with its stats.
pub fn train_model(
    prepared: &PreparedDataset,
    preset: DatasetPreset,
    kind: ModelKind,
    sampler_cfg: &SamplerConfig,
    cfg: &RunConfig,
    observer: &mut dyn TrainObserver,
) -> (AnyModel, TrainStats) {
    let mut model = AnyModel::build(kind, &prepared.dataset, cfg);
    let mut sampler = build_sampler(sampler_cfg, &prepared.dataset, Some(&prepared.occupations))
        .expect("valid sampler config");
    let tc = paper_train_config(kind, preset, cfg);
    let stats = train(
        &mut model,
        &prepared.dataset,
        sampler.as_mut(),
        &tc,
        observer,
    )
    .expect("training run");
    (model, stats)
}

/// Trains a boxed sampler directly (for configurations that need a custom
/// prior object not expressible as [`SamplerConfig`]).
pub fn train_model_with_sampler(
    prepared: &PreparedDataset,
    preset: DatasetPreset,
    kind: ModelKind,
    sampler: &mut dyn NegativeSampler,
    cfg: &RunConfig,
    observer: &mut dyn TrainObserver,
) -> (AnyModel, TrainStats) {
    let mut model = AnyModel::build(kind, &prepared.dataset, cfg);
    let tc = paper_train_config(kind, preset, cfg);
    let stats = train(&mut model, &prepared.dataset, sampler, &tc, observer).expect("training run");
    (model, stats)
}

/// Trains MF on the sharded hogwild engine with `cfg.train_threads`
/// workers. Only the final metrics are statistically reproducible (see
/// `bns_core::parallel`); use the serial path when a bit-exact trace or
/// per-triple observation is needed.
pub fn train_mf_hogwild(
    prepared: &PreparedDataset,
    preset: DatasetPreset,
    sampler_cfg: &SamplerConfig,
    cfg: &RunConfig,
) -> (AnyModel, TrainStats) {
    let AnyModel::Mf(mut model) = AnyModel::build(ModelKind::Mf, &prepared.dataset, cfg) else {
        unreachable!("ModelKind::Mf builds an MF model");
    };
    let tc = paper_train_config(ModelKind::Mf, preset, cfg);
    let trainer = ParallelTrainer::new(tc, ParallelConfig::hogwild(cfg.train_threads))
        .expect("hogwild config with >= 1 thread is valid");
    let stats = trainer
        .train(
            &mut model,
            &prepared.dataset,
            sampler_cfg,
            Some(&prepared.occupations),
            &mut NoopObserver,
        )
        .expect("training run");
    (AnyModel::Mf(model), stats)
}

/// Convenience: train and evaluate with no observer.
///
/// MF runs honor [`RunConfig::train_threads`] through the sharded hogwild
/// engine; LightGCN (whose batched propagation is not hogwild-shardable)
/// always trains serially.
pub fn train_and_eval(
    prepared: &PreparedDataset,
    preset: DatasetPreset,
    kind: ModelKind,
    sampler_cfg: &SamplerConfig,
    cfg: &RunConfig,
) -> (RankingReport, TrainStats) {
    let (model, stats) = if cfg.train_threads > 1 && kind == ModelKind::Mf {
        train_mf_hogwild(prepared, preset, sampler_cfg, cfg)
    } else {
        train_model(prepared, preset, kind, sampler_cfg, cfg, &mut NoopObserver)
    };
    if let Some(path) = &cfg.save_artifact {
        save_artifact(&model, prepared, path);
    }
    let report = evaluate_ranking(&model, &prepared.dataset, &cfg.ks, cfg.threads);
    (report, stats)
}

/// Freezes a trained model into a `bns-serve` [`ModelArtifact`] at `path`,
/// embedding the training-positive CSR for seen-item filtering. The frozen
/// scores are bitwise identical to what `evaluate_ranking` measures, so
/// the reported metrics carry over to serving exactly.
///
/// Failures (an unwritable path, a full disk) are reported to stderr but
/// do **not** abort the run — a paper-scale training run must never be
/// thrown away because its artifact could not be written; the evaluation
/// still completes and reports.
pub fn save_artifact(model: &AnyModel, prepared: &PreparedDataset, path: &std::path::Path) {
    let artifact = match ModelArtifact::freeze(model, prepared.dataset.train()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("warning: could not freeze model artifact: {e}");
            return;
        }
    };
    match artifact.save(path) {
        Ok(()) => eprintln!(
            "saved {} artifact ({} users × {} items, d = {}) to {}",
            artifact.kind().name(),
            artifact.n_users(),
            artifact.n_items(),
            artifact.dim(),
            path.display()
        ),
        Err(e) => eprintln!(
            "warning: could not write model artifact to {}: {e}",
            path.display()
        ),
    }
}

/// Fans observer callbacks out to several observers.
pub struct MultiObserver<'a> {
    observers: Vec<&'a mut dyn TrainObserver>,
}

impl<'a> MultiObserver<'a> {
    /// Wraps a list of observers.
    pub fn new(observers: Vec<&'a mut dyn TrainObserver>) -> Self {
        Self { observers }
    }
}

impl TrainObserver for MultiObserver<'_> {
    fn on_triple(&mut self, epoch: usize, u: u32, pos: u32, neg: u32, info: f32) {
        for obs in self.observers.iter_mut() {
            obs.on_triple(epoch, u, pos, neg, info);
        }
    }

    fn on_epoch_end(&mut self, epoch: usize, model: &dyn Scorer) {
        for obs in self.observers.iter_mut() {
            obs.on_epoch_end(epoch, model);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::cli::HarnessArgs;

    fn quick_cfg() -> RunConfig {
        let mut cfg = RunConfig::from_args(&HarnessArgs::default());
        cfg.scale = 0.05;
        cfg.epochs = 3;
        cfg.dim = 8;
        cfg.threads = 2;
        cfg
    }

    #[test]
    fn prepares_all_presets() {
        let cfg = quick_cfg();
        for preset in DatasetPreset::ALL {
            let p = prepare_dataset(preset, &cfg);
            assert!(!p.dataset.train().is_empty());
            assert!(!p.dataset.test().is_empty());
            assert_eq!(p.occupations.n_users(), p.dataset.n_users());
        }
    }

    #[test]
    fn dataset_preparation_is_deterministic() {
        let cfg = quick_cfg();
        let a = prepare_dataset(DatasetPreset::Ml100k, &cfg);
        let b = prepare_dataset(DatasetPreset::Ml100k, &cfg);
        assert_eq!(a.dataset.train(), b.dataset.train());
        assert_eq!(a.dataset.test(), b.dataset.test());
    }

    #[test]
    fn trains_both_models_end_to_end() {
        let cfg = quick_cfg();
        let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
        for kind in [ModelKind::Mf, ModelKind::LightGcn] {
            let (report, stats) = train_and_eval(
                &prepared,
                DatasetPreset::Ml100k,
                kind,
                &SamplerConfig::Rns,
                &cfg,
            );
            assert!(stats.triples > 0, "{}: no triples", kind.name());
            assert_eq!(report.rows.len(), 3);
            assert!(report.n_users > 0);
        }
    }

    #[test]
    fn hogwild_train_threads_produces_comparable_metrics() {
        let mut cfg = quick_cfg();
        cfg.epochs = 6;
        let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
        let (serial_report, serial_stats) = train_and_eval(
            &prepared,
            DatasetPreset::Ml100k,
            ModelKind::Mf,
            &SamplerConfig::Rns,
            &cfg,
        );
        cfg.train_threads = 4;
        let (hog_report, hog_stats) = train_and_eval(
            &prepared,
            DatasetPreset::Ml100k,
            ModelKind::Mf,
            &SamplerConfig::Rns,
            &cfg,
        );
        assert_eq!(serial_stats.triples, hog_stats.triples);
        // Both engines train a usable model; exact metric equality is not
        // expected under hogwild.
        assert!(hog_report.n_users == serial_report.n_users);
        for (a, b) in serial_report.rows.iter().zip(&hog_report.rows) {
            assert!((a.ndcg - b.ndcg).abs() < 0.2, "{} vs {}", a.ndcg, b.ndcg);
        }
    }

    #[test]
    fn any_model_forwards_update_batch_to_mf_blocked_path() {
        // At k_negatives > 1 the MF blocked group update differs from the
        // trait-default per-triple loop, so training through AnyModel must
        // match training the inner MatrixFactorization directly bit for
        // bit — this pins the explicit update_batch forwarding.
        use bns_core::{train, NoopObserver};
        use bns_model::MatrixFactorization;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut cfg = quick_cfg();
        cfg.k_negatives = 2;
        let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
        let tc = paper_train_config(ModelKind::Mf, DatasetPreset::Ml100k, &cfg);
        assert_eq!(tc.k_negatives, 2);

        let build_mf = |d: &Dataset| {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6d0de1);
            MatrixFactorization::new(d.n_users(), d.n_items(), cfg.dim, cfg.init_std, &mut rng)
                .unwrap()
        };
        let mut direct = build_mf(&prepared.dataset);
        let mut sampler =
            bns_core::build_sampler(&SamplerConfig::Dns { m: 3 }, &prepared.dataset, None).unwrap();
        train(
            &mut direct,
            &prepared.dataset,
            sampler.as_mut(),
            &tc,
            &mut NoopObserver,
        )
        .unwrap();

        let mut wrapped = AnyModel::Mf(build_mf(&prepared.dataset));
        let mut sampler =
            bns_core::build_sampler(&SamplerConfig::Dns { m: 3 }, &prepared.dataset, None).unwrap();
        train(
            &mut wrapped,
            &prepared.dataset,
            sampler.as_mut(),
            &tc,
            &mut NoopObserver,
        )
        .unwrap();

        for u in 0..prepared.dataset.n_users() {
            for i in 0..prepared.dataset.n_items() {
                assert_eq!(
                    direct.score(u, i).to_bits(),
                    wrapped.score(u, i).to_bits(),
                    "AnyModel dropped the blocked MF update_batch path"
                );
            }
        }
    }

    #[test]
    fn save_artifact_round_trips_bitwise_for_both_models() {
        let mut cfg = quick_cfg();
        let prepared = prepare_dataset(DatasetPreset::Ml100k, &cfg);
        let path = std::env::temp_dir().join(format!(
            "bns_runner_artifact_test_{}.bnsa",
            std::process::id()
        ));
        cfg.save_artifact = Some(path.clone());
        for kind in [ModelKind::Mf, ModelKind::LightGcn] {
            let (report, _) = train_and_eval(
                &prepared,
                DatasetPreset::Ml100k,
                kind,
                &SamplerConfig::Rns,
                &cfg,
            );
            let artifact = ModelArtifact::load(&path).expect("artifact written and loadable");
            // The frozen scores reproduce the just-evaluated metrics exactly.
            let frozen_report =
                evaluate_ranking(&artifact, &prepared.dataset, &cfg.ks, cfg.threads);
            assert_eq!(report, frozen_report, "{}: metrics diverged", kind.name());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_observer_fans_out() {
        struct Count(usize);
        impl TrainObserver for Count {
            fn on_triple(&mut self, _: usize, _: u32, _: u32, _: u32, _: f32) {
                self.0 += 1;
            }
            fn on_epoch_end(&mut self, _: usize, _: &dyn Scorer) {}
        }
        let cfg = quick_cfg();
        let prepared = prepare_dataset(DatasetPreset::YahooR3, &cfg);
        let mut a = Count(0);
        let mut b = Count(0);
        {
            let mut multi = MultiObserver::new(vec![&mut a, &mut b]);
            let (_, stats) = train_model(
                &prepared,
                DatasetPreset::YahooR3,
                ModelKind::Mf,
                &SamplerConfig::Dns { m: 3 },
                &cfg,
                &mut multi,
            );
            assert!(stats.triples > 0);
        }
        assert_eq!(a.0, b.0);
        assert!(a.0 > 0);
    }
}
