//! Property-based tests of the statistics substrate.

use bns_stats::dist::Continuous;
use bns_stats::special::{beta_inc, gamma_p, ln_gamma};
use bns_stats::{
    AliasTable, Exponential, FalseNegativeDensity, GammaDist, Histogram, Normal,
    OrderStatisticDensity, StudentT, TrueNegativeDensity, UniformDist,
};
use proptest::prelude::*;

proptest! {
    // ---------- special functions ----------

    #[test]
    fn gamma_p_is_a_cdf_in_x(a in 0.1f64..20.0, x1 in 0.0f64..50.0, x2 in 0.0f64..50.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let p_lo = gamma_p(a, lo).unwrap();
        let p_hi = gamma_p(a, hi).unwrap();
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!(p_hi + 1e-12 >= p_lo);
    }

    #[test]
    fn beta_inc_is_a_cdf_in_x(
        a in 0.1f64..10.0,
        b in 0.1f64..10.0,
        x1 in 0.0f64..=1.0,
        x2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let i_lo = beta_inc(a, b, lo).unwrap();
        let i_hi = beta_inc(a, b, hi).unwrap();
        prop_assert!((0.0..=1.0).contains(&i_lo));
        prop_assert!(i_hi + 1e-10 >= i_lo);
    }

    #[test]
    fn ln_gamma_satisfies_recurrence(x in 0.5f64..50.0) {
        // Γ(x+1) = x·Γ(x) ⇒ lnΓ(x+1) = ln x + lnΓ(x).
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    // ---------- distributions ----------

    #[test]
    fn all_cdfs_are_monotone_and_bounded(
        x1 in -30.0f64..30.0,
        x2 in -30.0f64..30.0,
        nu in 0.5f64..20.0,
        alpha in 0.2f64..10.0,
        rate in 0.1f64..5.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let dists: Vec<Box<dyn Fn(f64) -> f64>> = vec![
            Box::new({ let d = Normal::new(0.0, 1.5).unwrap(); move |x| d.cdf(x) }),
            Box::new({ let d = StudentT::new(nu).unwrap(); move |x| d.cdf(x) }),
            Box::new({ let d = GammaDist::new(alpha, rate).unwrap(); move |x| d.cdf(x) }),
            Box::new({ let d = Exponential::new(rate).unwrap(); move |x| d.cdf(x) }),
            Box::new({ let d = UniformDist::new(-2.0, 3.0).unwrap(); move |x| d.cdf(x) }),
        ];
        for cdf in &dists {
            let c_lo = cdf(lo);
            let c_hi = cdf(hi);
            prop_assert!((0.0..=1.0).contains(&c_lo));
            prop_assert!((0.0..=1.0).contains(&c_hi));
            prop_assert!(c_hi + 1e-10 >= c_lo);
        }
    }

    #[test]
    fn order_densities_are_nonnegative_and_bracket(
        x in -10.0f64..10.0,
        sigma in 0.2f64..4.0,
    ) {
        let base = Normal::new(0.0, sigma).unwrap();
        let tn = TrueNegativeDensity::new(base);
        let fnd = FalseNegativeDensity::new(base);
        prop_assert!(tn.density(x) >= 0.0);
        prop_assert!(fnd.density(x) >= 0.0);
        // g + h = 2f (Eq. 9 + Eq. 10 sum to twice the base density).
        let sum = tn.density(x) + fnd.density(x);
        prop_assert!((sum - 2.0 * base.pdf(x)).abs() < 1e-10);
        // P(max ≤ x) ≤ F(x) ≤ P(min ≤ x).
        prop_assert!(fnd.cdf(x) <= base.cdf(x) + 1e-12);
        prop_assert!(tn.cdf(x) >= base.cdf(x) - 1e-12);
    }

    // ---------- histograms ----------

    #[test]
    fn histogram_density_integrates_to_one(
        data in prop::collection::vec(-50.0f64..50.0, 2..200),
        bins in 1usize..40,
    ) {
        let h = Histogram::from_data(&data, bins).unwrap();
        prop_assert_eq!(h.total() as usize, data.len());
        let integral: f64 = h.densities().iter().sum::<f64>() * h.bin_width();
        prop_assert!((integral - 1.0).abs() < 1e-9);
    }

    // ---------- alias tables ----------

    #[test]
    fn alias_table_never_emits_zero_weight(
        weights in prop::collection::vec(0.0f64..10.0, 1..50),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        for _ in 0..200 {
            let idx = table.sample(&mut rng);
            prop_assert!(weights[idx] > 0.0, "sampled zero-weight outcome {}", idx);
        }
    }
}
