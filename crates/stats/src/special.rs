//! Special functions implemented from scratch.
//!
//! The paper's Fig. 2 plots the order-statistic densities of Normal,
//! Student-t and Gamma distributions, whose cdfs require the error function,
//! the regularized incomplete beta function and the regularized incomplete
//! gamma function respectively. None of the approved dependencies provide
//! them, so they are implemented here following the classic series /
//! continued-fraction decompositions (Numerical Recipes §6.1–6.4), with
//! accuracy around 1e-12 on the tested domains.

// The Lanczos / Acklam coefficient tables keep the published digit
// counts verbatim even where f64 rounds them.
#![allow(clippy::excessive_precision)]

use crate::{Result, StatsError};

/// Natural log of the gamma function, via the Lanczos approximation (g = 7,
/// n = 9 coefficients). Valid for `x > 0`; accuracy ~1e-13.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Maximum iterations for the series / continued-fraction expansions.
const MAX_ITER: usize = 500;
/// Relative tolerance for the expansions.
const EPS: f64 = 1e-14;
/// Number near the smallest representable positive normal, used to avoid
/// division by zero in Lentz's algorithm.
const FPMIN: f64 = 1e-300;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`. Requires `a > 0`, `x ≥ 0`.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || !a.is_finite() {
        return Err(StatsError::InvalidParameter {
            what: "gamma_p: a must be > 0",
        });
    }
    if x < 0.0 || !x.is_finite() {
        return Err(StatsError::InvalidParameter {
            what: "gamma_p: x must be >= 0",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        // Series representation converges quickly here.
        gamma_p_series(a, x)
    } else {
        // Continued fraction for Q(a, x), then P = 1 - Q.
        Ok(1.0 - gamma_q_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    Ok(1.0 - gamma_p(a, x)?)
}

fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            return Ok(sum * (-x + a * x.ln() - ln_gamma(a)).exp());
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_p_series",
    })
}

fn gamma_q_cf(a: f64, x: f64) -> Result<f64> {
    // Modified Lentz's algorithm for the continued fraction of Q(a, x).
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok((-x + a * x.ln() - ln_gamma(a)).exp() * h);
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_q_cf",
    })
}

/// The error function `erf(x)`, computed through the incomplete gamma
/// function: `erf(x) = sign(x) · P(1/2, x²)`. Accuracy ~1e-13.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    // P(1/2, x^2) always converges for finite x; the unwrap is safe because
    // the parameters are in-domain by construction.
    let p = gamma_p(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// For large positive `x` this is computed through `Q(1/2, x²)` directly to
/// avoid catastrophic cancellation.
pub fn erfc(x: f64) -> f64 {
    if x <= 0.0 {
        // erf(x) ≤ 0 here, so 1 − erf(x) involves no cancellation.
        return 1.0 - erf(x);
    }
    gamma_q(0.5, x * x).unwrap_or(0.0)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// `I_0 = 0`, `I_1 = 1`. Requires `a, b > 0` and `x ∈ [0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "beta_inc: a, b must be > 0",
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidParameter {
            what: "beta_inc: x must be in [0, 1]",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * beta_cf(a, b, x)? / a)
    } else {
        Ok(1.0 - front * beta_cf(b, a, 1.0 - x)? / b)
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> Result<f64> {
    // Modified Lentz's algorithm for the continued fraction of I_x(a, b).
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence { routine: "beta_cf" })
}

/// Standard normal cdf `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal pdf `φ(x)`.
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal cdf (the probit function), via the
/// Acklam rational approximation refined with one Halley step.
/// Accuracy ~1e-13 on (0, 1).
pub fn std_normal_quantile(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            what: "probit: p must be in [0, 1]",
        });
    }
    if p == 0.0 {
        return Ok(f64::NEG_INFINITY);
    }
    if p == 1.0 {
        return Ok(f64::INFINITY);
    }
    // Coefficients of the Acklam approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step drives the error to ~machine precision.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        let mut factorial = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                factorial *= (n - 1) as f64;
            }
            assert_close(ln_gamma(n as f64), factorial.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi).
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = sqrt(pi)/2.
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        assert_close(erf(0.0), 0.0, 1e-15);
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-10);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.0] {
            assert_close(erfc(x), 1.0 - erf(x), 1e-12);
        }
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_close(gamma_p(2.0, 0.0).unwrap(), 0.0, 1e-15);
        assert_close(gamma_p(2.0, 1e6).unwrap(), 1.0, 1e-12);
        // P(1, x) = 1 - exp(-x) for the unit exponential.
        for &x in &[0.1, 1.0, 2.5, 7.0] {
            assert_close(gamma_p(1.0, x).unwrap(), 1.0 - (-x_f(x)).exp(), 1e-12);
        }
        fn x_f(x: f64) -> f64 {
            x
        }
    }

    #[test]
    fn gamma_p_rejects_bad_args() {
        assert!(gamma_p(-1.0, 1.0).is_err());
        assert!(gamma_p(1.0, -1.0).is_err());
        assert!(gamma_p(0.0, 1.0).is_err());
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.2)] {
            let lhs = beta_inc(a, b, x).unwrap();
            let rhs = 1.0 - beta_inc(b, a, 1.0 - x).unwrap();
            assert_close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn beta_inc_uniform_case() {
        // I_x(1, 1) = x (Beta(1,1) is uniform).
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_close(beta_inc(1.0, 1.0, x).unwrap(), x, 1e-12);
        }
    }

    #[test]
    fn beta_inc_reference_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry.
        assert_close(beta_inc(2.0, 2.0, 0.5).unwrap(), 0.5, 1e-12);
        // Beta(2,1): cdf = x^2.
        assert_close(beta_inc(2.0, 1.0, 0.6).unwrap(), 0.36, 1e-12);
    }

    #[test]
    fn probit_round_trips_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = std_normal_quantile(p).unwrap();
            assert_close(std_normal_cdf(x), p, 1e-10);
        }
    }

    #[test]
    fn probit_extremes() {
        assert_eq!(std_normal_quantile(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(std_normal_quantile(1.0).unwrap(), f64::INFINITY);
        assert!(std_normal_quantile(-0.1).is_err());
        assert!(std_normal_quantile(1.1).is_err());
    }

    #[test]
    fn std_normal_pdf_peak() {
        assert_close(std_normal_pdf(0.0), 0.398_942_280_401_432_7, 1e-12);
    }
}
