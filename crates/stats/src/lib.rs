#![deny(missing_docs)]

//! # bns-stats — statistics substrate for the BNS reproduction
//!
//! Everything in the paper's probabilistic machinery lives here:
//!
//! * [`special`] — special functions (`erf`, `ln_gamma`, regularized
//!   incomplete gamma/beta) implemented from scratch; no external math crate.
//! * [`dist`] — continuous distributions (Normal, Student-t, Gamma,
//!   Exponential, Uniform) with pdf/cdf/sampling, used by Fig. 2 of the paper
//!   and by the synthetic data generator.
//! * [`order`] — the paper's order-statistic densities
//!   `g(x) = 2 f(x)(1 − F(x))` (true negatives, Eq. 9) and
//!   `h(x) = 2 f(x) F(x)` (false negatives, Eq. 10).
//! * [`ecdf`] — empirical cumulative distribution functions (Eq. 16), the
//!   model-agnostic likelihood estimate at the heart of BNS.
//! * [`histogram`] / [`kde`] — density estimation for reproducing Fig. 1.
//! * [`moments`] — Welford streaming moments (used by the SRNS baseline).
//! * [`alias`] — alias-method weighted sampling (used by the PNS baseline).
//! * [`ks`] — Kolmogorov–Smirnov distances (used in tests to validate both
//!   the samplers and the synthetic generator).
//! * [`quantile`] — quantiles and ranks on sorted data.

pub mod alias;
pub mod correlation;
pub mod dist;
pub mod ecdf;
pub mod histogram;
pub mod kde;
pub mod ks;
pub mod moments;
pub mod order;
pub mod quantile;
pub mod special;

pub use alias::AliasTable;
pub use dist::{Continuous, Exponential, GammaDist, Normal, StudentT, UniformDist};
pub use ecdf::{Ecdf, EcdfMode};
pub use histogram::Histogram;
pub use kde::GaussianKde;
pub use moments::Welford;
pub use order::{FalseNegativeDensity, OrderStatisticDensity, TrueNegativeDensity};

/// Errors produced by the statistics substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        what: &'static str,
    },
    /// An operation required a non-empty sample but received an empty one.
    EmptySample,
    /// Numerical iteration failed to converge.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InvalidParameter { what } => {
                write!(f, "invalid distribution parameter: {what}")
            }
            StatsError::EmptySample => write!(f, "operation requires a non-empty sample"),
            StatsError::NoConvergence { routine } => {
                write!(f, "numerical routine `{routine}` failed to converge")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
