//! Empirical cumulative distribution functions.
//!
//! Eq. (16) of the paper estimates the score cdf `F(x̂ₗ)` by the fraction of a
//! user's un-interacted item scores that are `≤ x̂ₗ`. The Glivenko–Cantelli
//! theorem (cited by the paper) guarantees uniform a.s. convergence of this
//! estimate, which also justifies the optional subsampled mode used as a
//! performance knob on large catalogs.

use crate::{Result, StatsError};
use rand::seq::IteratorRandom;
use rand::Rng;

/// How the ECDF treats its input sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcdfMode {
    /// Use every observation (the paper's exact Eq. 16).
    Exact,
    /// Use a uniform subsample of at most `n` observations. Justified by
    /// Glivenko–Cantelli / DKW: the sup-norm error is `O(1/√n)` w.h.p.
    Subsample(usize),
}

/// An empirical CDF built from a sample of `f64` observations.
///
/// Construction sorts the (possibly subsampled) data once; evaluation is a
/// binary search, so `eval` costs `O(log n)`.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from raw observations. Non-finite values are rejected.
    pub fn new(data: &[f64]) -> Result<Self> {
        Self::with_mode(data, EcdfMode::Exact, &mut rand::rng())
    }

    /// Builds an ECDF with an explicit [`EcdfMode`]; the RNG is only used in
    /// subsample mode.
    pub fn with_mode<R: Rng + ?Sized>(data: &[f64], mode: EcdfMode, rng: &mut R) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::InvalidParameter {
                what: "Ecdf: observations must be finite",
            });
        }
        let mut sorted: Vec<f64> = match mode {
            EcdfMode::Exact => data.to_vec(),
            EcdfMode::Subsample(n) if n >= data.len() => data.to_vec(),
            EcdfMode::Subsample(n) => {
                if n == 0 {
                    return Err(StatsError::InvalidParameter {
                        what: "Ecdf: subsample size must be > 0",
                    });
                }
                data.iter().copied().choose_multiple(rng, n)
            }
        };
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Self { sorted })
    }

    /// `F̂(x)` — the fraction of observations `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.count_le(x) as f64 / self.sorted.len() as f64
    }

    /// Number of observations `≤ x` (the numerator of Eq. 16).
    pub fn count_le(&self, x: f64) -> usize {
        // partition_point returns the first index whose value is > x.
        self.sorted.partition_point(|&v| v <= x)
    }

    /// Number of observations used by the estimate.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no observations (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted backing sample.
    pub fn sorted_data(&self) -> &[f64] {
        &self.sorted
    }

    /// The empirical quantile (inverse cdf) at level `p ∈ [0, 1]`, using the
    /// left-continuous generalized inverse.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidParameter {
                what: "Ecdf::quantile: p must be in [0, 1]",
            });
        }
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        Ok(self.sorted[idx])
    }
}

/// Computes the ECDF value of `x` against a raw unsorted slice in `O(n)`,
/// without building an [`Ecdf`]. This is the form used in the sampler's hot
/// loop where the score vector is already materialized and consulted only a
/// handful of times (|Mᵤ| ≤ 15 in the paper).
pub fn ecdf_scan(data: &[f64], x: f64) -> f64 {
    debug_assert!(!data.is_empty(), "ecdf_scan requires a non-empty sample");
    let count = data.iter().filter(|&&v| v <= x).count();
    count as f64 / data.len() as f64
}

/// `f32` variant of [`ecdf_scan`] operating directly on model score vectors.
pub fn ecdf_scan_f32(data: &[f32], x: f32) -> f64 {
    debug_assert!(
        !data.is_empty(),
        "ecdf_scan_f32 requires a non-empty sample"
    );
    let count = data.iter().filter(|&&v| v <= x).count();
    count as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert_eq!(Ecdf::new(&[]).unwrap_err(), StatsError::EmptySample);
        assert!(Ecdf::new(&[1.0, f64::NAN]).is_err());
        assert!(Ecdf::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn step_function_semantics() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(1.5), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(10.0), 1.0);
    }

    #[test]
    fn eval_matches_scan() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64 * 0.1).collect();
        let e = Ecdf::new(&data).unwrap();
        for &x in &[-1.0, 0.0, 3.3, 5.05, 10.0, 100.0] {
            assert_eq!(e.eval(x), ecdf_scan(&data, x));
        }
    }

    #[test]
    fn scan_f32_matches_f64() {
        let data32: Vec<f32> = vec![0.5, 1.5, 2.5, 3.5];
        let data64: Vec<f64> = data32.iter().map(|&v| v as f64).collect();
        for &x in &[0.0f32, 1.5, 2.0, 4.0] {
            assert_eq!(ecdf_scan_f32(&data32, x), ecdf_scan(&data64, x as f64));
        }
    }

    #[test]
    fn subsample_mode_approximates_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64) / 10_000.0).collect();
        let exact = Ecdf::new(&data).unwrap();
        let sub = Ecdf::with_mode(&data, EcdfMode::Subsample(500), &mut rng).unwrap();
        assert_eq!(sub.len(), 500);
        // DKW: sup-error < ~sqrt(ln(2/δ)/2n); 0.08 is a ~4σ bound at n = 500.
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            assert!((exact.eval(x) - sub.eval(x)).abs() < 0.08);
        }
    }

    #[test]
    fn subsample_larger_than_data_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = [3.0, 1.0, 2.0];
        let e = Ecdf::with_mode(&data, EcdfMode::Subsample(10), &mut rng).unwrap();
        assert_eq!(e.len(), 3);
        assert_eq!(e.eval(2.0), 2.0 / 3.0);
    }

    #[test]
    fn zero_subsample_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(Ecdf::with_mode(&[1.0], EcdfMode::Subsample(0), &mut rng).is_err());
    }

    #[test]
    fn quantile_inverts_eval() {
        let data: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let e = Ecdf::new(&data).unwrap();
        assert_eq!(e.quantile(0.0).unwrap(), 1.0);
        assert_eq!(e.quantile(0.5).unwrap(), 50.0);
        assert_eq!(e.quantile(1.0).unwrap(), 100.0);
        assert!(e.quantile(1.5).is_err());
    }

    #[test]
    fn glivenko_cantelli_convergence() {
        // ECDF of uniform samples converges to the identity cdf.
        use crate::dist::{Continuous, UniformDist};
        let mut rng = StdRng::seed_from_u64(4);
        let u = UniformDist::standard();
        let xs = u.sample_n(&mut rng, 50_000);
        let e = Ecdf::new(&xs).unwrap();
        let mut sup: f64 = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            sup = sup.max((e.eval(x) - x).abs());
        }
        assert!(sup < 0.01, "sup-norm error {sup}");
    }
}
