//! Correlation coefficients.
//!
//! Used by the test suites to verify distributional claims quantitatively —
//! most notably the paper's footnote 3 ("*Ranking position and F(x̂ₗ) are
//! with a one-to-one mapping*"), checked as a Spearman correlation of −1
//! between rank-from-top and ECDF value in `bns-core`'s tests — and by the
//! synthetic-data validation (planted affinity vs interaction frequency).

use crate::{Result, StatsError};

/// Pearson product-moment correlation of two equal-length samples.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter {
            what: "pearson: samples must have equal length",
        });
    }
    if x.len() < 2 {
        return Err(StatsError::EmptySample);
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let (da, db) = (a - mx, b - my);
        cov += da * db;
        vx += da * da;
        vy += db * db;
    }
    if vx == 0.0 || vy == 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "pearson: a sample has zero variance",
        });
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Mid-ranks (average ranks for ties), 1-based.
fn mid_ranks(x: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| x[a].partial_cmp(&x[b]).expect("finite values"));
    let mut ranks = vec![0.0; x.len()];
    let mut i = 0usize;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && x[idx[j + 1]] == x[idx[i]] {
            j += 1;
        }
        // Average rank of the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation (Pearson on mid-ranks; tie-aware).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter {
            what: "spearman: samples must have equal length",
        });
    }
    pearson(&mid_ranks(x), &mid_ranks(y))
}

/// Kendall's τ-b (tie-corrected), O(n²) — intended for the modest sample
/// sizes used in validation tests.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64> {
    if x.len() != y.len() {
        return Err(StatsError::InvalidParameter {
            what: "kendall: samples must have equal length",
        });
    }
    let n = x.len();
    if n < 2 {
        return Err(StatsError::EmptySample);
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_x = 0i64;
    let mut ties_y = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = x[i] - x[j];
            let dy = y[i] - y[j];
            if dx == 0.0 && dy == 0.0 {
                ties_x += 1;
                ties_y += 1;
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let total = (n * (n - 1) / 2) as f64;
    let denom = ((total - ties_x as f64) * (total - ties_y as f64)).sqrt();
    if denom == 0.0 {
        return Err(StatsError::InvalidParameter {
            what: "kendall: all pairs tied in one variable",
        });
    }
    Ok((concordant - discordant) as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_bad_input() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err()); // zero variance
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        // y = x³ is monotone: Spearman 1, Pearson < 1.
        let x: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties_with_midranks() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mid_ranks_average_tie_groups() {
        assert_eq!(
            mid_ranks(&[10.0, 20.0, 20.0, 5.0]),
            vec![2.0, 3.5, 3.5, 1.0]
        );
    }

    #[test]
    fn kendall_reference_values() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((kendall_tau(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let rev = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&x, &rev).unwrap() + 1.0).abs() < 1e-12);
        // One swap from perfect order: τ = 1 − 2·2/10 = 0.6? For n = 5,
        // swapping adjacent elements creates 1 discordant of 10 pairs:
        // τ = (9 − 1)/10 = 0.8.
        let one_swap = [2.0, 1.0, 3.0, 4.0, 5.0];
        assert!((kendall_tau(&x, &one_swap).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn kendall_rejects_degenerate() {
        assert!(kendall_tau(&[1.0], &[1.0]).is_err());
        assert!(kendall_tau(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn correlations_agree_in_sign() {
        let x = [0.3, 1.2, -0.5, 2.0, 0.9, -1.4];
        let y = [0.5, 1.0, -0.2, 1.8, 1.1, -0.9];
        let p = pearson(&x, &y).unwrap();
        let s = spearman(&x, &y).unwrap();
        let k = kendall_tau(&x, &y).unwrap();
        assert!(p > 0.8 && s > 0.8 && k > 0.6);
    }
}
