//! Continuous distributions used throughout the reproduction.
//!
//! The paper's Fig. 2 separates true-negative from false-negative score
//! densities under three base laws — `N(0, 1)`, Student `t(3)` and
//! `Ga(2, 1)` — and the synthetic data generator draws latent factors from
//! Gaussians. Everything here is implemented on top of [`crate::special`];
//! no external math crate is used.
//!
//! All distributions implement [`Continuous`]: `pdf`, `cdf` and seeded
//! `sample`, the contract the order-statistic layer (`crate::order`), the
//! Bayesian classifier (`bns-core`) and the synthetic generator rely on.

use crate::special::{beta_inc, gamma_p, std_normal_cdf, std_normal_pdf};
use crate::{Result, StatsError};
use rand::{Rng, RngCore};

/// Uniform `[0, 1)` draw used by the samplers below.
#[inline]
fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A continuous univariate distribution.
pub trait Continuous {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution at `x`.
    fn cdf(&self, x: f64) -> f64;

    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Draws `n` samples into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------------

/// The normal distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates `N(mean, sd²)`; `sd` must be finite and positive.
    pub fn new(mean: f64, sd: f64) -> Result<Self> {
        if !mean.is_finite() || !sd.is_finite() || sd <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "Normal requires finite mean and sd > 0",
            });
        }
        Ok(Normal { mean, sd })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mean: 0.0, sd: 1.0 }
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Continuous for Normal {
    fn pdf(&self, x: f64) -> f64 {
        std_normal_pdf((x - self.mean) / self.sd) / self.sd
    }

    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mean) / self.sd)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; both draws of the pair would be valid,
        // one is discarded to keep the per-call contract simple.
        loop {
            let u = 2.0 * unit(rng) - 1.0;
            let v = 2.0 * unit(rng) - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.sd * u * factor;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Student-t
// ---------------------------------------------------------------------------

/// Student's t distribution with `nu` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
    /// Cached pdf normalization `Γ((ν+1)/2) / (√(νπ) Γ(ν/2))`.
    ln_norm: f64,
}

impl StudentT {
    /// Creates `t(nu)`; `nu` must be finite and positive.
    pub fn new(nu: f64) -> Result<Self> {
        if !nu.is_finite() || nu <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "StudentT requires nu > 0",
            });
        }
        let ln_norm = crate::special::ln_gamma((nu + 1.0) / 2.0)
            - crate::special::ln_gamma(nu / 2.0)
            - 0.5 * (nu * std::f64::consts::PI).ln();
        Ok(StudentT { nu, ln_norm })
    }

    /// The degrees-of-freedom parameter.
    pub fn nu(&self) -> f64 {
        self.nu
    }
}

impl Continuous for StudentT {
    fn pdf(&self, x: f64) -> f64 {
        (self.ln_norm - 0.5 * (self.nu + 1.0) * (1.0 + x * x / self.nu).ln()).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        // F(x) via the regularized incomplete beta:
        // I_{ν/(ν+x²)}(ν/2, 1/2), split at zero by symmetry.
        if x == 0.0 {
            return 0.5;
        }
        let t = self.nu / (self.nu + x * x);
        let half_tail = 0.5
            * beta_inc(self.nu / 2.0, 0.5, t)
                .expect("beta_inc arguments are in-domain by construction");
        if x > 0.0 {
            1.0 - half_tail
        } else {
            half_tail
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // t(ν) = Z / sqrt(χ²(ν)/ν) with χ²(ν) = Ga(ν/2, 1/2).
        let z = Normal::standard().sample(rng);
        let chi2 = GammaDist {
            shape: self.nu / 2.0,
            rate: 0.5,
        }
        .sample(rng);
        z / (chi2 / self.nu).sqrt()
    }
}

// ---------------------------------------------------------------------------
// Gamma
// ---------------------------------------------------------------------------

/// The gamma distribution `Ga(shape, rate)` (rate parameterization:
/// mean = shape / rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaDist {
    shape: f64,
    rate: f64,
}

impl GammaDist {
    /// Creates `Ga(shape, rate)`; both must be finite and positive.
    pub fn new(shape: f64, rate: f64) -> Result<Self> {
        if !shape.is_finite() || !rate.is_finite() || shape <= 0.0 || rate <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "GammaDist requires shape > 0 and rate > 0",
            });
        }
        Ok(GammaDist { shape, rate })
    }

    /// The shape parameter α.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The rate parameter β.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Continuous for GammaDist {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Limit at the boundary: finite only for shape >= 1.
            return if self.shape > 1.0 {
                0.0
            } else if self.shape == 1.0 {
                self.rate
            } else {
                f64::INFINITY
            };
        }
        let ln_pdf = self.shape * self.rate.ln() + (self.shape - 1.0) * x.ln()
            - self.rate * x
            - crate::special::ln_gamma(self.shape);
        ln_pdf.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.shape, self.rate * x).expect("gamma_p arguments are in-domain by construction")
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang squeeze for shape >= 1, boosted for shape < 1.
        let (d_shape, boost) = if self.shape < 1.0 {
            let u = unit(rng).max(f64::MIN_POSITIVE);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = d_shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = Normal::standard().sample(rng);
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = unit(rng).max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * z * z + d - d * v3 + d * v3.ln() {
                return boost * d * v3 / self.rate;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// The exponential distribution with the given rate (mean = 1 / rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates `Exp(rate)`; `rate` must be finite and positive.
    pub fn new(rate: f64) -> Result<Self> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "Exponential requires rate > 0",
            });
        }
        Ok(Exponential { rate })
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Continuous for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse transform on the survival function.
        -(1.0 - unit(rng)).max(f64::MIN_POSITIVE).ln() / self.rate
    }
}

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

/// The continuous uniform distribution `U(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDist {
    a: f64,
    b: f64,
}

impl UniformDist {
    /// Creates `U(a, b)`; requires `a < b`, both finite.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !a.is_finite() || !b.is_finite() || a >= b {
            return Err(StatsError::InvalidParameter {
                what: "UniformDist requires finite a < b",
            });
        }
        Ok(UniformDist { a, b })
    }

    /// The standard uniform `U(0, 1)`.
    pub fn standard() -> Self {
        UniformDist { a: 0.0, b: 1.0 }
    }

    /// The lower bound.
    pub fn lower(&self) -> f64 {
        self.a
    }

    /// The upper bound.
    pub fn upper(&self) -> f64 {
        self.b
    }
}

impl Continuous for UniformDist {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.a || x > self.b {
            0.0
        } else {
            1.0 / (self.b - self.a)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.a {
            0.0
        } else if x >= self.b {
            1.0
        } else {
            (x - self.a) / (self.b - self.a)
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.a + (self.b - self.a) * unit(rng)
    }
}

/// Small numerical helpers shared by this crate's tests.
pub mod test_util {
    /// Composite trapezoid rule for `f` on `[lo, hi]` with `n` intervals.
    pub fn trapezoid<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, n: usize) -> f64 {
        assert!(n > 0 && hi > lo);
        let h = (hi - lo) / n as f64;
        let mut total = 0.5 * (f(lo) + f(hi));
        for i in 1..n {
            total += f(lo + h * i as f64);
        }
        total * h
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::trapezoid;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_validate_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(StudentT::new(0.0).is_err());
        assert!(GammaDist::new(-1.0, 1.0).is_err());
        assert!(GammaDist::new(1.0, 0.0).is_err());
        assert!(Exponential::new(0.0).is_err());
        assert!(UniformDist::new(2.0, 2.0).is_err());
    }

    /// `(pdf, lo, hi, tolerance)` rows for the integration check.
    type PdfCheck = (Box<dyn Fn(f64) -> f64>, f64, f64, f64);

    #[test]
    fn pdfs_integrate_to_one() {
        let checks: Vec<PdfCheck> = vec![
            (Box::new(|x| Normal::standard().pdf(x)), -12.0, 12.0, 1e-9),
            (
                Box::new(|x| StudentT::new(3.0).unwrap().pdf(x)),
                -300.0,
                300.0,
                1e-4,
            ),
            (
                Box::new(|x| GammaDist::new(2.0, 1.0).unwrap().pdf(x)),
                0.0,
                80.0,
                1e-7,
            ),
            (
                Box::new(|x| Exponential::new(1.5).unwrap().pdf(x)),
                0.0,
                40.0,
                1e-7,
            ),
            (
                Box::new(|x| UniformDist::new(-2.0, 3.0).unwrap().pdf(x)),
                -2.0,
                3.0,
                1e-12,
            ),
        ];
        for (pdf, lo, hi, tol) in checks {
            let total = trapezoid(&*pdf, lo, hi, 200_000);
            assert!((total - 1.0).abs() < tol, "integral {total}");
        }
    }

    #[test]
    fn cdf_matches_integrated_pdf() {
        let n = Normal::new(1.0, 2.0).unwrap();
        let g = GammaDist::new(2.5, 1.5).unwrap();
        let t = StudentT::new(5.0).unwrap();
        for &x in &[-1.0, 0.3, 1.7, 4.0] {
            let num = trapezoid(|y| n.pdf(y), -30.0, x, 100_000);
            assert!((num - n.cdf(x)).abs() < 1e-7, "normal at {x}");
        }
        for &x in &[0.5, 1.0, 3.0] {
            let num = trapezoid(|y| g.pdf(y), 0.0, x, 100_000);
            assert!((num - g.cdf(x)).abs() < 1e-7, "gamma at {x}");
        }
        for &x in &[-2.0, 0.0, 1.5] {
            let num = trapezoid(|y| t.pdf(y), -200.0, x, 400_000);
            assert!((num - t.cdf(x)).abs() < 1e-5, "student at {x}");
        }
    }

    #[test]
    fn known_cdf_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.96) - 0.975).abs() < 1e-3);
        let t = StudentT::new(3.0).unwrap();
        assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
        // t(3): P(T <= 2.3534) ≈ 0.95 (standard table value).
        assert!((t.cdf(2.3534) - 0.95).abs() < 1e-3);
        let e = Exponential::new(2.0).unwrap();
        assert!((e.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn sample_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(2024);
        let n = 60_000;

        let norm = Normal::new(2.0, 3.0).unwrap();
        let xs = norm.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "normal mean {mean}");
        assert!((var - 9.0).abs() < 0.3, "normal var {var}");

        let gamma = GammaDist::new(2.0, 1.0).unwrap();
        let xs = gamma.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "gamma mean {mean}");
        assert!(xs.iter().all(|&x| x > 0.0));

        let gamma_small = GammaDist::new(0.5, 2.0).unwrap();
        let xs = gamma_small.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.02, "small-shape gamma mean {mean}");

        let exp = Exponential::new(4.0).unwrap();
        let xs = exp.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "exponential mean {mean}");

        let uni = UniformDist::new(-1.0, 1.0).unwrap();
        let xs = uni.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "uniform mean {mean}");
        assert!(xs.iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn student_t_samples_are_heavy_tailed_but_centred() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = StudentT::new(5.0).unwrap();
        let n = 60_000;
        let xs = t.sample_n(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        // Var of t(5) = 5/3.
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "t mean {mean}");
        assert!((var - 5.0 / 3.0).abs() < 0.25, "t var {var}");
    }

    #[test]
    fn samples_agree_with_cdf_at_quartiles() {
        // Empirical CDF at the theoretical quartiles must be ≈ 0.25/0.5/0.75.
        let mut rng = StdRng::seed_from_u64(55);
        let g = GammaDist::new(2.0, 1.0).unwrap();
        let n = 40_000;
        let xs = g.sample_n(&mut rng, n);
        for target in [0.25, 0.5, 0.75] {
            // Invert the cdf by bisection.
            let (mut lo, mut hi) = (0.0f64, 50.0f64);
            for _ in 0..80 {
                let mid = 0.5 * (lo + hi);
                if g.cdf(mid) < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let q = 0.5 * (lo + hi);
            let frac = xs.iter().filter(|&&x| x <= q).count() as f64 / n as f64;
            assert!((frac - target).abs() < 0.02, "quartile {target}: {frac}");
        }
    }
}
