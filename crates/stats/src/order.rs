//! Order-statistic densities from the paper's §III-B.
//!
//! Given two iid score variables with pdf `f` and cdf `F`, sorted so that
//! `X_tn ≤ X_fn` (the paper's order relation, Eq. 6/7), the class-conditional
//! densities are
//!
//! * true negatives:  `g(x) = 2 f(x) (1 − F(x))`  — Eq. (9),
//! * false negatives: `h(x) = 2 f(x) F(x)`        — Eq. (10).
//!
//! Proposition 0.1 of the paper shows both are valid densities; the tests
//! here verify that claim numerically for several base distributions, and
//! [`kth_order_density`] generalizes to the k-th order statistic of n draws
//! (the pairwise case being `n = 2`).

use crate::dist::Continuous;
use crate::special::ln_gamma;
use rand::Rng;

/// Common interface of the derived order-statistic densities.
pub trait OrderStatisticDensity {
    /// Density value at `x`.
    fn density(&self, x: f64) -> f64;

    /// Cumulative distribution of the order statistic at `x`.
    fn cdf(&self, x: f64) -> f64;
}

/// Density of the score of a **true negative**, `g(x) = 2 f(x)(1 − F(x))`.
///
/// This is the distribution of `min(X₁, X₂)` for two iid scores — the lower
/// of the pair, matching the intuition that a model trained to rank positives
/// high pushes true negatives low.
#[derive(Debug, Clone, Copy)]
pub struct TrueNegativeDensity<D: Continuous> {
    base: D,
}

impl<D: Continuous> TrueNegativeDensity<D> {
    /// Wraps a base score distribution.
    pub fn new(base: D) -> Self {
        Self { base }
    }

    /// The wrapped base distribution.
    pub fn base(&self) -> &D {
        &self.base
    }

    /// Draws a sample by taking the minimum of two base draws.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let a = self.base.sample(rng);
        let b = self.base.sample(rng);
        a.min(b)
    }
}

impl<D: Continuous> OrderStatisticDensity for TrueNegativeDensity<D> {
    fn density(&self, x: f64) -> f64 {
        2.0 * self.base.pdf(x) * (1.0 - self.base.cdf(x))
    }

    fn cdf(&self, x: f64) -> f64 {
        // P(min ≤ x) = 1 − (1 − F)².
        let s = 1.0 - self.base.cdf(x);
        1.0 - s * s
    }
}

/// Density of the score of a **false negative**, `h(x) = 2 f(x) F(x)`.
///
/// This is the distribution of `max(X₁, X₂)` — the higher of the pair.
#[derive(Debug, Clone, Copy)]
pub struct FalseNegativeDensity<D: Continuous> {
    base: D,
}

impl<D: Continuous> FalseNegativeDensity<D> {
    /// Wraps a base score distribution.
    pub fn new(base: D) -> Self {
        Self { base }
    }

    /// The wrapped base distribution.
    pub fn base(&self) -> &D {
        &self.base
    }

    /// Draws a sample by taking the maximum of two base draws.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let a = self.base.sample(rng);
        let b = self.base.sample(rng);
        a.max(b)
    }
}

impl<D: Continuous> OrderStatisticDensity for FalseNegativeDensity<D> {
    fn density(&self, x: f64) -> f64 {
        2.0 * self.base.pdf(x) * self.base.cdf(x)
    }

    fn cdf(&self, x: f64) -> f64 {
        // P(max ≤ x) = F².
        let f = self.base.cdf(x);
        f * f
    }
}

/// Density of the k-th order statistic (1-based) of `n` iid draws:
///
/// `f_(k)(x) = n!/((k−1)!(n−k)!) · F^{k−1} (1−F)^{n−k} f(x)`.
///
/// With `n = 2`: `k = 1` reproduces [`TrueNegativeDensity`] and `k = 2`
/// reproduces [`FalseNegativeDensity`].
pub fn kth_order_density<D: Continuous>(base: &D, n: usize, k: usize, x: f64) -> f64 {
    assert!(k >= 1 && k <= n, "require 1 <= k <= n (k = {k}, n = {n})");
    let f = base.cdf(x);
    let ln_coeff = ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64) - ln_gamma((n - k) as f64 + 1.0);
    let pow = if k > 1 { f.powi(k as i32 - 1) } else { 1.0 }
        * if n > k {
            (1.0 - f).powi((n - k) as i32)
        } else {
            1.0
        };
    ln_coeff.exp() * pow * base.pdf(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::test_util::trapezoid;
    use crate::{GammaDist, Normal, StudentT, UniformDist};

    #[test]
    fn uniform_closed_forms() {
        // For U(0,1): g(x) = 2(1−x), h(x) = 2x.
        let tn = TrueNegativeDensity::new(UniformDist::standard());
        let fnd = FalseNegativeDensity::new(UniformDist::standard());
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((tn.density(x) - 2.0 * (1.0 - x)).abs() < 1e-12);
            assert!((fnd.density(x) - 2.0 * x).abs() < 1e-12);
        }
    }

    #[test]
    fn proposition_0_1_densities_integrate_to_one() {
        // The paper's Proposition 0.1 for three base distributions.
        let n = Normal::new(0.0, 1.0).unwrap();
        let tn = TrueNegativeDensity::new(n);
        let fnd = FalseNegativeDensity::new(n);
        assert!((trapezoid(|x| tn.density(x), -10.0, 10.0, 20_000) - 1.0).abs() < 1e-8);
        assert!((trapezoid(|x| fnd.density(x), -10.0, 10.0, 20_000) - 1.0).abs() < 1e-8);

        let t = StudentT::new(4.0).unwrap();
        let tn = TrueNegativeDensity::new(t);
        assert!((trapezoid(|x| tn.density(x), -80.0, 80.0, 80_000) - 1.0).abs() < 1e-5);

        let g = GammaDist::new(2.0, 1.0).unwrap();
        let fnd = FalseNegativeDensity::new(g);
        assert!((trapezoid(|x| fnd.density(x), 0.0, 60.0, 60_000) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tn_mass_sits_below_fn_mass() {
        // Fig. 2's separation: E[min] < E[max].
        let n = Normal::standard();
        let tn = TrueNegativeDensity::new(n);
        let fnd = FalseNegativeDensity::new(n);
        let mean_tn = trapezoid(|x| x * tn.density(x), -10.0, 10.0, 20_000);
        let mean_fn = trapezoid(|x| x * fnd.density(x), -10.0, 10.0, 20_000);
        assert!(mean_tn < mean_fn);
        // Known values: E[min of 2 std normals] = −1/√π.
        let expected = -1.0 / std::f64::consts::PI.sqrt();
        assert!((mean_tn - expected).abs() < 1e-6);
        assert!((mean_fn + expected).abs() < 1e-6);
    }

    #[test]
    fn order_cdfs_bracket_base_cdf() {
        // P(max ≤ x) ≤ F(x) ≤ P(min ≤ x).
        let n = Normal::standard();
        let tn = TrueNegativeDensity::new(n);
        let fnd = FalseNegativeDensity::new(n);
        for i in -30..30 {
            let x = 0.1 * i as f64;
            let f = n.cdf(x);
            assert!(fnd.cdf(x) <= f + 1e-12);
            assert!(tn.cdf(x) >= f - 1e-12);
        }
    }

    #[test]
    fn kth_order_density_matches_pairwise_cases() {
        let n = Normal::standard();
        let tn = TrueNegativeDensity::new(n);
        let fnd = FalseNegativeDensity::new(n);
        for &x in &[-1.5, 0.0, 0.7, 2.0] {
            assert!((kth_order_density(&n, 2, 1, x) - tn.density(x)).abs() < 1e-12);
            assert!((kth_order_density(&n, 2, 2, x) - fnd.density(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn kth_order_density_integrates_to_one_for_n3() {
        let n = Normal::standard();
        for k in 1..=3 {
            let total = trapezoid(|x| kth_order_density(&n, 3, k, x), -10.0, 10.0, 20_000);
            assert!((total - 1.0).abs() < 1e-7, "k = {k}: {total}");
        }
    }

    #[test]
    #[should_panic(expected = "require 1 <= k <= n")]
    fn kth_order_density_rejects_bad_k() {
        let n = Normal::standard();
        kth_order_density(&n, 2, 3, 0.0);
    }

    #[test]
    fn sampling_matches_density_means() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let tn = TrueNegativeDensity::new(Normal::standard());
        let m: f64 = (0..40_000).map(|_| tn.sample(&mut rng)).sum::<f64>() / 40_000.0;
        let expected = -1.0 / std::f64::consts::PI.sqrt();
        assert!(
            (m - expected).abs() < 0.02,
            "sampled mean {m}, expected {expected}"
        );
    }
}
