//! Gaussian kernel density estimation.
//!
//! Fig. 1 of the paper draws smooth density curves for the true/false
//! negative score populations; [`GaussianKde`] reproduces those curves from
//! the recorded scores with Silverman's rule-of-thumb bandwidth.

use crate::{Result, StatsError};

/// A Gaussian KDE over a fixed sample.
#[derive(Debug, Clone)]
pub struct GaussianKde {
    data: Vec<f64>,
    bandwidth: f64,
}

impl GaussianKde {
    /// Builds a KDE with Silverman's rule-of-thumb bandwidth
    /// `h = 0.9 · min(σ̂, IQR/1.34) · n^{−1/5}`.
    pub fn new(data: &[f64]) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::InvalidParameter {
                what: "GaussianKde: observations must be finite",
            });
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n.max(2.0);
        let sd = var.sqrt();

        let mut sorted = data.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = |p: f64| -> f64 {
            let idx = ((p * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
            sorted[idx]
        };
        let iqr = q(0.75) - q(0.25);
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        let bandwidth = if spread > 0.0 {
            0.9 * spread * n.powf(-0.2)
        } else {
            // Degenerate (constant) sample: any positive bandwidth works.
            1e-3
        };
        Ok(Self {
            data: data.to_vec(),
            bandwidth,
        })
    }

    /// Builds a KDE with an explicit bandwidth.
    pub fn with_bandwidth(data: &[f64], bandwidth: f64) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "GaussianKde: bandwidth must be finite and > 0",
            });
        }
        Ok(Self {
            data: data.to_vec(),
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.data.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.data
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on an even grid of `points` values across
    /// `[lo, hi]`, returning `(x, density)` pairs.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        if points == 0 {
            return Vec::new();
        }
        if points == 1 {
            return vec![(lo, self.density(lo))];
        }
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.density(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Continuous, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_input() {
        assert!(GaussianKde::new(&[]).is_err());
        assert!(GaussianKde::new(&[f64::NAN]).is_err());
        assert!(GaussianKde::with_bandwidth(&[1.0], 0.0).is_err());
    }

    #[test]
    fn integrates_to_one() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64 - 100.0) / 25.0).collect();
        let kde = GaussianKde::new(&data).unwrap();
        let pts = kde.grid(-15.0, 15.0, 3001);
        let step = pts[1].0 - pts[0].0;
        let integral: f64 = pts.iter().map(|&(_, d)| d).sum::<f64>() * step;
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn recovers_normal_density_shape() {
        let mut rng = StdRng::seed_from_u64(10);
        let n = Normal::standard();
        let data = n.sample_n(&mut rng, 20_000);
        let kde = GaussianKde::new(&data).unwrap();
        for &x in &[-1.0, 0.0, 1.0] {
            let err = (kde.density(x) - n.pdf(x)).abs();
            assert!(err < 0.03, "density error {err} at {x}");
        }
    }

    #[test]
    fn constant_sample_is_handled() {
        let kde = GaussianKde::new(&[2.0, 2.0, 2.0]).unwrap();
        assert!(kde.density(2.0) > 0.0);
        assert!(kde.bandwidth() > 0.0);
    }

    #[test]
    fn grid_endpoints() {
        let kde = GaussianKde::with_bandwidth(&[0.0], 1.0).unwrap();
        let g = kde.grid(-1.0, 1.0, 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0].0, -1.0);
        assert_eq!(g[4].0, 1.0);
        assert!(kde.grid(0.0, 1.0, 0).is_empty());
        assert_eq!(kde.grid(0.5, 1.0, 1).len(), 1);
    }
}
