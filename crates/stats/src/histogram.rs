//! Uniform-bin histograms with density normalization.
//!
//! Fig. 1 of the paper shows the *density* of true-negative and
//! false-negative scores at several training epochs; [`Histogram`] produces
//! exactly those normalized bin heights.

use crate::{Result, StatsError};

/// A histogram over `[lo, hi)` with equally wide bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// Observations outside `[lo, hi)`.
    outliers: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if lo >= hi || !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::InvalidParameter {
                what: "Histogram: requires finite lo < hi",
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidParameter {
                what: "Histogram: requires at least one bin",
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            outliers: 0,
        })
    }

    /// Builds a histogram from data, with the range taken from the sample
    /// (slightly widened so the maximum lands inside the last bin).
    pub fn from_data(data: &[f64], bins: usize) -> Result<Self> {
        if data.is_empty() {
            return Err(StatsError::EmptySample);
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in data {
            if !x.is_finite() {
                return Err(StatsError::InvalidParameter {
                    what: "Histogram: observations must be finite",
                });
            }
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo == hi {
            // Degenerate sample: widen artificially around the point.
            lo -= 0.5;
            hi += 0.5;
        } else {
            hi += (hi - lo) * 1e-9;
        }
        let mut h = Self::new(lo, hi, bins)?;
        for &x in data {
            h.add(x);
        }
        Ok(h)
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x >= self.hi || !x.is_finite() {
            self.outliers += 1;
            return;
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + self.bin_width() * (i as f64 + 0.5)
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Normalized density heights: `count / (total · bin_width)`, so the
    /// histogram integrates to 1 (the quantity plotted in Fig. 1).
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (self.total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }

    /// `(bin_center, density)` pairs, ready for plotting/printing.
    pub fn density_points(&self) -> Vec<(f64, f64)> {
        self.densities()
            .into_iter()
            .enumerate()
            .map(|(i, d)| (self.bin_center(i), d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_config() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::from_data(&[], 4).is_err());
        assert!(Histogram::from_data(&[f64::NAN], 4).is_err());
    }

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        for &x in &[0.5, 1.5, 1.6, 2.2, 3.9] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    fn out_of_range_goes_to_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
        assert_eq!(h.outliers(), 3);
    }

    #[test]
    fn density_integrates_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 * 0.01).collect();
        let h = Histogram::from_data(&data, 20).unwrap();
        let integral: f64 = h.densities().iter().sum::<f64>() * h.bin_width();
        assert!((integral - 1.0).abs() < 1e-9, "integral = {integral}");
    }

    #[test]
    fn from_data_covers_extremes() {
        let h = Histogram::from_data(&[1.0, 2.0, 3.0], 3).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.outliers(), 0);
    }

    #[test]
    fn degenerate_sample_is_widened() {
        let h = Histogram::from_data(&[5.0, 5.0], 4).unwrap();
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4).unwrap();
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }
}
