//! Alias-method weighted discrete sampling (Walker/Vose).
//!
//! The PNS baseline samples items with probability proportional to
//! `popularity^0.75`; with the alias method the per-draw cost is O(1) after
//! an O(n) build, which keeps the popularity-biased sampler on the same
//! complexity budget as uniform sampling.

use crate::{Result, StatsError};
use rand::Rng;

/// Precomputed alias table for sampling indices `0..n` with fixed weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (not necessarily normalized).
    ///
    /// Fails on an empty slice, on non-finite or negative weights, and when
    /// every weight is zero.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if weights.len() > u32::MAX as usize {
            return Err(StatsError::InvalidParameter {
                what: "AliasTable: more than u32::MAX outcomes",
            });
        }
        let mut total = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(StatsError::InvalidParameter {
                    what: "AliasTable: weights must be finite and >= 0",
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(StatsError::InvalidParameter {
                what: "AliasTable: at least one weight must be positive",
            });
        }

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();

        // Vose's algorithm: split outcomes into under-full and over-full.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly full (modulo fp error).
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Ok(Self { prob, alias })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false: construction rejects empty weight vectors.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let i = rng.random_range(0..n);
        let u: f64 = rng.random_range(0.0..1.0);
        if u < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[-1.0, 2.0]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_is_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000usize;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn heavily_skewed_weights() {
        let weights = [1000.0, 1.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000usize;
        let ones = (0..n).filter(|_| t.sample(&mut rng) == 1).count();
        let expected = n as f64 / 1001.0;
        assert!(
            (ones as f64 - expected).abs() < 5.0 * expected.sqrt() + 10.0,
            "ones = {ones}, expected ≈ {expected}"
        );
    }

    #[test]
    fn large_table_builds() {
        let weights: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let t = AliasTable::new(&weights).unwrap();
        assert_eq!(t.len(), 10_000);
        assert!(!t.is_empty());
    }
}
