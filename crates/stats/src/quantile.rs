//! Quantiles, ranks and summary statistics on slices.
//!
//! Small utilities shared by the evaluation crate (rank-position
//! computations for AOBPR/DNS) and the experiment harness (summaries of
//! measured metric distributions across repeated runs).

use crate::{Result, StatsError};

/// Linear-interpolation quantile (type 7, the R/NumPy default) of already
/// **sorted** ascending data.
pub fn quantile_sorted(sorted: &[f64], p: f64) -> Result<f64> {
    if sorted.is_empty() {
        return Err(StatsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidParameter {
            what: "quantile: p must be in [0, 1]",
        });
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "data must be sorted"
    );
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let h = p * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median of sorted data.
pub fn median_sorted(sorted: &[f64]) -> Result<f64> {
    quantile_sorted(sorted, 0.5)
}

/// Mean of a slice; errors on empty input.
pub fn mean(data: &[f64]) -> Result<f64> {
    if data.is_empty() {
        return Err(StatsError::EmptySample);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population standard deviation of a slice; errors on empty input.
pub fn std_dev(data: &[f64]) -> Result<f64> {
    let m = mean(data)?;
    let var = data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64;
    Ok(var.sqrt())
}

/// 0-based rank of `x` within `scores` counted from the **top**: the number
/// of entries strictly greater than `x`. Rank 0 means `x` would be the
/// highest score. This is the `rank(j|u)` used by the AOBPR baseline.
pub fn rank_from_top_f32(scores: &[f32], x: f32) -> usize {
    scores.iter().filter(|&&s| s > x).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_reference_values() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile_sorted(&data, 1.0).unwrap(), 4.0);
        assert_eq!(quantile_sorted(&data, 0.5).unwrap(), 2.5);
        // NumPy: np.quantile([1,2,3,4], 0.25) = 1.75.
        assert!((quantile_sorted(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_args() {
        assert!(quantile_sorted(&[], 0.5).is_err());
        assert!(quantile_sorted(&[1.0], 1.5).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median_sorted(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert_eq!(median_sorted(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
        assert_eq!(median_sorted(&[7.0]).unwrap(), 7.0);
    }

    #[test]
    fn mean_and_std() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&data).unwrap() - 5.0).abs() < 1e-12);
        assert!((std_dev(&data).unwrap() - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_err());
        assert!(std_dev(&[]).is_err());
    }

    #[test]
    fn rank_from_top_semantics() {
        let scores = [0.1f32, 0.9, 0.5, 0.7];
        assert_eq!(rank_from_top_f32(&scores, 1.0), 0);
        assert_eq!(rank_from_top_f32(&scores, 0.9), 0);
        assert_eq!(rank_from_top_f32(&scores, 0.6), 2);
        assert_eq!(rank_from_top_f32(&scores, 0.0), 4);
    }
}
