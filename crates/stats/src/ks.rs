//! Kolmogorov–Smirnov statistics.
//!
//! Used throughout the test suites to check that (a) the from-scratch
//! distribution samplers match their own cdfs, (b) the synthetic dataset
//! generator produces the popularity law it promises, and (c) the recorded
//! true-negative / false-negative score populations in the Fig. 1
//! reproduction really do separate (two-sample KS distance grows with
//! training epochs).

/// One-sample KS statistic `D_n = sup_x |F_n(x) − F(x)|` against a reference
/// cdf. `sorted` must be ascending; returns 0 for an empty sample.
pub fn ks_statistic_against_cdf<F: Fn(f64) -> f64>(sorted: &[f64], cdf: F) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "sample must be sorted ascending"
    );
    let nf = n as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        // ECDF jumps from i/n to (i+1)/n at x; check both sides of the jump.
        let lo = i as f64 / nf;
        let hi = (i + 1) as f64 / nf;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Two-sample KS statistic `sup_x |F_a(x) − F_b(x)|`.
/// Both inputs must be sorted ascending; returns 0 if either is empty.
pub fn ks_statistic_two_sample(a_sorted: &[f64], b_sorted: &[f64]) -> f64 {
    if a_sorted.is_empty() || b_sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(a_sorted.windows(2).all(|w| w[0] <= w[1]));
    debug_assert!(b_sorted.windows(2).all(|w| w[0] <= w[1]));
    let (na, nb) = (a_sorted.len() as f64, b_sorted.len() as f64);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < a_sorted.len() && j < b_sorted.len() {
        let xa = a_sorted[i];
        let xb = b_sorted[j];
        if xa <= xb {
            i += 1;
        }
        if xb <= xa {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Approximate p-value for the one-sample KS statistic via the asymptotic
/// Kolmogorov distribution `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}`.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    if n == 0 || d <= 0.0 {
        return 1.0;
    }
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_has_small_statistic() {
        // Sample at exact uniform quantile midpoints: D = 1/(2n).
        let n = 100;
        let sorted: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let d = ks_statistic_against_cdf(&sorted, |x| x.clamp(0.0, 1.0));
        assert!((d - 0.005).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn gross_mismatch_has_large_statistic() {
        // Sample concentrated near 0 against a uniform cdf.
        let sorted: Vec<f64> = (0..100).map(|i| i as f64 * 1e-4).collect();
        let d = ks_statistic_against_cdf(&sorted, |x| x.clamp(0.0, 1.0));
        assert!(d > 0.9, "d = {d}");
    }

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(ks_statistic_against_cdf(&[], |x| x), 0.0);
        assert_eq!(ks_statistic_two_sample(&[], &[1.0]), 0.0);
    }

    #[test]
    fn two_sample_identical_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic_two_sample(&a, &a), 0.0);
    }

    #[test]
    fn two_sample_disjoint_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0];
        assert_eq!(ks_statistic_two_sample(&a, &b), 1.0);
    }

    #[test]
    fn two_sample_interleaved() {
        let a = [1.0, 3.0, 5.0];
        let b = [2.0, 4.0, 6.0];
        let d = ks_statistic_two_sample(&a, &b);
        assert!((d - 1.0 / 3.0).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn p_value_behaviour() {
        // Tiny statistic on a large sample: not significant.
        assert!(ks_p_value(0.005, 100) > 0.9);
        // Huge statistic: extremely significant.
        assert!(ks_p_value(0.5, 100) < 1e-6);
        // Degenerate inputs.
        assert_eq!(ks_p_value(0.0, 100), 1.0);
        assert_eq!(ks_p_value(0.3, 0), 1.0);
    }
}
