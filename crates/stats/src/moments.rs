//! Streaming moments (Welford's online algorithm).
//!
//! The SRNS baseline scores candidates repeatedly across epochs and prefers
//! negatives whose predicted score shows **high variance**; [`Welford`]
//! provides the numerically stable running mean/variance it needs without
//! storing score histories.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean and variance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean.
    m2: f64,
}

impl Welford {
    /// A fresh accumulator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n); 0 with fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by n − 1); 0 with fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(data: &[f64]) -> (f64, f64) {
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(5.0);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_reference() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let (mean, var) = reference(&data);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        // Known: mean 5, population variance 4.
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let mut w = Welford::new();
        for &x in &[1.0, 3.0] {
            w.push(x);
        }
        assert!((w.variance() - 1.0).abs() < 1e-12);
        assert!((w.sample_variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.5];
        let b_data = [10.0, -4.0, 0.5, 2.0];
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut seq = Welford::new();
        for &x in &a_data {
            a.push(x);
            seq.push(x);
        }
        for &x in &b_data {
            b.push(x);
            seq.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-12);
        assert!((a.variance() - seq.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation scenario for naive formulas.
        let offset = 1e9;
        let mut w = Welford::new();
        for &x in &[offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0] {
            w.push(x);
        }
        assert!((w.sample_variance() - 30.0).abs() < 1e-6);
    }
}
