//! The paper's footnote 3: "Ranking position and F(x̂ₗ) are with a
//! one-to-one mapping."
//!
//! Verified quantitatively: over a user's negatives, the empirical-cdf
//! value used by BNS and the rank-from-top position must be perfectly
//! rank-correlated (Spearman = −1: higher F ⇔ fewer items above ⇔ smaller
//! rank-from-top), which is also why BNS degenerates to DNS under a
//! non-informative prior (§IV-D).

use bns_core::bns::prior::NonInformativePrior;
use bns_core::bns::{BnsConfig, BnsSampler};
use bns_core::sampler::SampleContext;
use bns_data::{Interactions, Popularity};
use bns_model::scorer::FixedScorer;
use bns_model::Scorer;
use bns_stats::correlation::spearman;
use bns_stats::quantile::rank_from_top_f32;

fn fixture(n_items: u32, seed_scores: u64) -> (Interactions, Popularity, FixedScorer, Vec<f32>) {
    let train = Interactions::from_pairs(1, n_items, &[(0, 0)]).unwrap();
    let pop = Popularity::from_interactions(&train);
    // Deterministic pseudo-random distinct scores.
    let scores: Vec<f32> = (0..n_items)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed_scores);
            ((h >> 33) as f32) / (u32::MAX as f32) + i as f32 * 1e-7
        })
        .collect();
    let scorer = FixedScorer::new(1, n_items, scores.clone());
    let mut user_scores = vec![0.0f32; n_items as usize];
    scorer.score_all(0, &mut user_scores);
    (train, pop, scorer, user_scores)
}

#[test]
fn f_hat_and_rank_are_one_to_one() {
    let (train, pop, scorer, user_scores) = fixture(120, 99);
    let sampler = BnsSampler::new(
        BnsConfig::default(),
        Box::new(NonInformativePrior::new(120)),
    )
    .unwrap();
    let ctx = SampleContext {
        scorer: &scorer,
        train: &train,
        popularity: &pop,
        user_scores: &user_scores,
        epoch: 0,
    };
    let mut f_values = Vec::new();
    let mut ranks = Vec::new();
    for item in 1..120u32 {
        let sig = sampler.evaluate_candidate(0, 0, item, &ctx);
        f_values.push(sig.f_hat);
        ranks.push(rank_from_top_f32(&user_scores, user_scores[item as usize]) as f64);
    }
    let rho = spearman(&f_values, &ranks).unwrap();
    assert!(
        (rho + 1.0).abs() < 1e-9,
        "F(x̂) vs rank Spearman = {rho}, expected −1 (one-to-one mapping)"
    );
}

#[test]
fn under_noninformative_prior_bns_ranks_by_f_only() {
    // With P_fn constant, unbias is a strictly decreasing function of F
    // alone, so candidate ordering by unbias equals ordering by −F — the
    // §IV-D degeneration to DNS-style rank information.
    let (train, pop, scorer, user_scores) = fixture(60, 7);
    let sampler =
        BnsSampler::new(BnsConfig::default(), Box::new(NonInformativePrior::new(60))).unwrap();
    let ctx = SampleContext {
        scorer: &scorer,
        train: &train,
        popularity: &pop,
        user_scores: &user_scores,
        epoch: 0,
    };
    let mut signals: Vec<(f64, f64)> = (1..60u32)
        .map(|item| {
            let s = sampler.evaluate_candidate(0, 0, item, &ctx);
            (s.f_hat, s.unbias)
        })
        .collect();
    signals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    for w in signals.windows(2) {
        assert!(
            w[0].1 >= w[1].1 - 1e-12,
            "unbias not monotone in F under constant prior: {w:?}"
        );
    }
}
