//! SRNS — Simplified and Robustified Negative Sampling (Ding et al.,
//! NeurIPS 2020), in the simplified form the paper benchmarks.
//!
//! SRNS keeps a per-user **memory** of candidate negatives and tracks the
//! *variance* of each candidate's predicted score across epochs. Its
//! selection favors candidates that are simultaneously high-scored
//! (informative) and high-variance (empirically correlated with being a
//! true negative — false negatives converge to stably high scores):
//!
//! ```text
//! j = argmax_{l ∈ memory sample}  score(l) + α · std(l)
//! ```
//!
//! After each draw the memory is partially refreshed with fresh uniform
//! candidates so estimates do not collapse onto a frozen set. The paper's
//! §IV-B2 notes the "linear average operation of SRNS … may weaken its
//! effectiveness" — reproduced here by the same linear combination.

use crate::sampler::{draw_uniform_negative, NegativeSampler, SampleContext, ScoreAccess};
use crate::{CoreError, Result};
use bns_model::TripleBatch;
use bns_stats::Welford;
use rand::Rng;

/// Per-user candidate memory with score-variance statistics.
#[derive(Debug, Clone)]
struct UserMemory {
    items: Vec<u32>,
    stats: Vec<Welford>,
    /// Scores of `items`, valid only while `cache_stamp` matches the
    /// sampler's current batch stamp (the model is frozen within one
    /// `sample_batch` call, so same-user draws can reuse the gather).
    cached_scores: Vec<f32>,
    cache_stamp: u64,
    /// Slots refreshed since the cache was filled (their cached score is
    /// stale and re-gathered before the next same-user draw).
    dirty: Vec<u32>,
}

/// Variance-aware sampler.
#[derive(Debug, Clone)]
pub struct Srns {
    /// Memory size S₁ per user.
    memory_size: usize,
    /// Number of memory slots examined per draw (S₂).
    sample_size: usize,
    /// Weight α on the standard deviation term.
    alpha: f64,
    /// Probability of refreshing one memory slot after a draw.
    refresh_prob: f64,
    memories: Vec<Option<UserMemory>>,
    /// Reusable buffer for the S₁ memory-item scores of the current draw.
    score_scratch: Vec<f32>,
    /// Monotone id of the current `sample_batch` call (cache validity).
    batch_stamp: u64,
    /// Reusable buffers for re-gathering refreshed (dirty) slots.
    dirty_ids: Vec<u32>,
    dirty_scores: Vec<f32>,
}

impl Srns {
    /// Creates SRNS with memory size `s1`, per-draw sample size `s2 ≤ s1`,
    /// variance weight `alpha` and per-draw refresh probability.
    pub fn new(s1: usize, s2: usize, alpha: f64, refresh_prob: f64) -> Result<Self> {
        if s1 == 0 || s2 == 0 || s2 > s1 {
            return Err(CoreError::InvalidConfig(
                "SRNS requires 0 < sample_size <= memory_size".into(),
            ));
        }
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(CoreError::InvalidConfig(
                "SRNS alpha must be finite and >= 0".into(),
            ));
        }
        if !(0.0..=1.0).contains(&refresh_prob) {
            return Err(CoreError::InvalidConfig(
                "SRNS refresh_prob must be in [0, 1]".into(),
            ));
        }
        Ok(Self {
            memory_size: s1,
            sample_size: s2,
            alpha,
            refresh_prob,
            memories: Vec::new(),
            score_scratch: Vec::with_capacity(s1),
            batch_stamp: 0,
            dirty_ids: Vec::new(),
            dirty_scores: Vec::new(),
        })
    }

    /// The paper-aligned default: S₁ = 20, S₂ = 5, α = 1, 20% refresh.
    pub fn paper_default() -> Self {
        Self::new(20, 5, 1.0, 0.2).expect("valid defaults")
    }

    fn memory_for<R: Rng + ?Sized>(
        &mut self,
        u: u32,
        ctx: &SampleContext<'_>,
        rng: &mut R,
    ) -> Option<&mut UserMemory> {
        if self.memories.len() <= u as usize {
            self.memories.resize_with(u as usize + 1, || None);
        }
        if self.memories[u as usize].is_none() {
            let mut items = Vec::with_capacity(self.memory_size);
            for _ in 0..self.memory_size {
                items.push(draw_uniform_negative(ctx.train, u, rng)?);
            }
            let stats = vec![Welford::new(); self.memory_size];
            self.memories[u as usize] = Some(UserMemory {
                items,
                stats,
                cached_scores: Vec::new(),
                cache_stamp: 0,
                dirty: Vec::new(),
            });
        }
        self.memories[u as usize].as_mut()
    }

    /// The S₂-sample selection and stochastic refresh shared by the
    /// per-pair and batched paths: `scores[slot]` must hold the current
    /// score of `mem.items[slot]` and have already been pushed into the
    /// Welford stats. Returns the selected item and the refreshed slot (if
    /// any), consuming RNG in exactly the per-pair order.
    #[allow(clippy::too_many_arguments)] // the flat per-draw state of one SRNS step
    fn select_and_refresh(
        sample_size: usize,
        memory_size: usize,
        alpha: f64,
        refresh_prob: f64,
        mem: &mut UserMemory,
        scores: &[f32],
        ctx: &SampleContext<'_>,
        u: u32,
        rng: &mut dyn rand::RngCore,
    ) -> (Option<u32>, Option<usize>) {
        // Examine S₂ random slots; pick argmax score + α·std.
        let mut best: Option<(f64, u32)> = None;
        for _ in 0..sample_size {
            let slot = rng.random_range(0..memory_size);
            let item = mem.items[slot];
            let value = scores[slot] as f64 + alpha * mem.stats[slot].std_dev();
            if best.map(|(v, _)| value > v).unwrap_or(true) {
                best = Some((value, item));
            }
        }

        // Stochastic memory refresh keeps exploration alive.
        let mut refreshed = None;
        if rng.random_range(0.0..1.0) < refresh_prob {
            if let Some(fresh) = draw_uniform_negative(ctx.train, u, rng) {
                let slot = rng.random_range(0..memory_size);
                mem.items[slot] = fresh;
                mem.stats[slot] = Welford::new();
                refreshed = Some(slot);
            }
        }
        (best.map(|(_, item)| item), refreshed)
    }
}

impl NegativeSampler for Srns {
    fn name(&self) -> &str {
        "SRNS"
    }

    fn sample(
        &mut self,
        u: u32,
        _pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        let sample_size = self.sample_size;
        let alpha = self.alpha;
        let refresh_prob = self.refresh_prob;
        let memory_size = self.memory_size;
        self.memory_for(u, ctx, rng)?;
        let mem = self.memories[u as usize].as_mut().expect("just ensured");

        // Score only the S₁ memory items (one gather-dot; the score_all
        // path paid O(n·d) for the same S₁ reads) and update the running
        // variance statistics.
        self.score_scratch.clear();
        self.score_scratch.resize(mem.items.len(), 0.0);
        ctx.scorer
            .score_items(u, &mem.items, &mut self.score_scratch);
        for (stat, &s) in mem.stats.iter_mut().zip(&self.score_scratch) {
            stat.push(s as f64);
        }

        let (best, _) = Self::select_and_refresh(
            sample_size,
            memory_size,
            alpha,
            refresh_prob,
            mem,
            &self.score_scratch,
            ctx,
            u,
            rng,
        );
        best
    }

    /// The batched draw: draws are processed in pair order (the RNG
    /// sequence is exactly the looped per-pair path), but the S₁-item
    /// score gather is cached per user for the duration of the batch — the
    /// model is frozen, so only slots touched by a stochastic refresh are
    /// re-gathered. Same-user draws (every `k > 1` workload, and repeated
    /// users within a shuffled batch) therefore pay one full gather plus
    /// at most one-slot incremental gathers instead of a full S₁ gather
    /// per draw.
    fn sample_batch(
        &mut self,
        pairs: &[(u32, u32)],
        k: usize,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
        out: &mut TripleBatch,
    ) {
        self.batch_stamp += 1;
        let stamp = self.batch_stamp;
        let sample_size = self.sample_size;
        let alpha = self.alpha;
        let refresh_prob = self.refresh_prob;
        let memory_size = self.memory_size;

        crate::sampler::fill_rows(pairs, k, out, rng, |u, rng| {
            self.memory_for(u, ctx, rng)?;
            let mem = self.memories[u as usize].as_mut().expect("just ensured");
            if mem.cache_stamp != stamp {
                // First draw for this user in the batch: full gather.
                mem.cached_scores.clear();
                mem.cached_scores.resize(mem.items.len(), 0.0);
                ctx.scorer
                    .score_items(u, &mem.items, &mut mem.cached_scores);
                mem.cache_stamp = stamp;
                mem.dirty.clear();
            } else if !mem.dirty.is_empty() {
                // Re-gather only the slots a refresh replaced.
                self.dirty_ids.clear();
                for &slot in &mem.dirty {
                    self.dirty_ids.push(mem.items[slot as usize]);
                }
                self.dirty_scores.clear();
                self.dirty_scores.resize(self.dirty_ids.len(), 0.0);
                ctx.scorer
                    .score_items(u, &self.dirty_ids, &mut self.dirty_scores);
                for (&slot, &s) in mem.dirty.iter().zip(&self.dirty_scores) {
                    mem.cached_scores[slot as usize] = s;
                }
                mem.dirty.clear();
            }
            // Identical Welford pushes to the per-pair path (same values:
            // the model is frozen for the whole batch).
            for (stat, &s) in mem.stats.iter_mut().zip(&mem.cached_scores) {
                stat.push(s as f64);
            }
            // Lend the cached scores out of `mem` (no copy) so the helper
            // can mutate the memory while reading them.
            let cached = std::mem::take(&mut mem.cached_scores);
            let (best, refreshed) = Self::select_and_refresh(
                sample_size,
                memory_size,
                alpha,
                refresh_prob,
                mem,
                &cached,
                ctx,
                u,
                rng,
            );
            mem.cached_scores = cached;
            if let Some(slot) = refreshed {
                mem.dirty.push(slot as u32);
            }
            best
        });
    }

    fn score_access(&self) -> ScoreAccess {
        ScoreAccess::Candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::{Interactions, Popularity};
    use bns_model::scorer::FixedScorer;
    use bns_model::Scorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(Srns::new(0, 1, 1.0, 0.1).is_err());
        assert!(Srns::new(5, 0, 1.0, 0.1).is_err());
        assert!(Srns::new(5, 6, 1.0, 0.1).is_err());
        assert!(Srns::new(5, 5, -1.0, 0.1).is_err());
        assert!(Srns::new(5, 5, 1.0, 1.5).is_err());
        assert!(Srns::new(20, 5, 1.0, 0.2).is_ok());
    }

    fn fixture(n_items: u32) -> (Interactions, Popularity, FixedScorer, Vec<f32>) {
        let train = Interactions::from_pairs(1, n_items, &[(0, 0)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scores: Vec<f32> = (0..n_items).map(|i| i as f32 * 0.1).collect();
        let scorer = FixedScorer::new(1, n_items, scores);
        let mut user_scores = vec![0.0f32; n_items as usize];
        scorer.score_all(0, &mut user_scores);
        (train, pop, scorer, user_scores)
    }

    #[test]
    fn never_samples_positive() {
        let (train, pop, scorer, user_scores) = fixture(30);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut s = Srns::paper_default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1_000 {
            let j = s.sample(0, 0, &ctx, &mut rng).unwrap();
            assert_ne!(j, 0);
            assert!(j < 30);
        }
    }

    #[test]
    fn favors_high_scores_with_zero_alpha() {
        let (train, pop, scorer, user_scores) = fixture(100);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        // α = 0 → pure max-score over the memory sample.
        let mut s = Srns::new(20, 5, 0.0, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut mean = 0.0f64;
        let n = 4_000;
        for _ in 0..n {
            mean += s.sample(0, 0, &ctx, &mut rng).unwrap() as f64;
        }
        mean /= n as f64;
        assert!(mean > 60.0, "mean selected id {mean} not biased high");
    }

    #[test]
    fn saturated_user_returns_none() {
        let train = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scorer = FixedScorer::new(1, 2, vec![0.0; 2]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &[0.0, 0.0],
            epoch: 0,
        };
        let mut s = Srns::paper_default();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(s.sample(0, 0, &ctx, &mut rng), None);
    }

    #[test]
    fn memory_is_lazily_allocated_per_user() {
        let (train, pop, scorer, user_scores) = fixture(30);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut s = Srns::paper_default();
        assert!(s.memories.is_empty());
        let mut rng = StdRng::seed_from_u64(3);
        s.sample(0, 0, &ctx, &mut rng);
        assert_eq!(s.memories.len(), 1);
        assert!(s.memories[0].is_some());
    }
}
