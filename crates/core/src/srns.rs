//! SRNS — Simplified and Robustified Negative Sampling (Ding et al.,
//! NeurIPS 2020), in the simplified form the paper benchmarks.
//!
//! SRNS keeps a per-user **memory** of candidate negatives and tracks the
//! *variance* of each candidate's predicted score across epochs. Its
//! selection favors candidates that are simultaneously high-scored
//! (informative) and high-variance (empirically correlated with being a
//! true negative — false negatives converge to stably high scores):
//!
//! ```text
//! j = argmax_{l ∈ memory sample}  score(l) + α · std(l)
//! ```
//!
//! After each draw the memory is partially refreshed with fresh uniform
//! candidates so estimates do not collapse onto a frozen set. The paper's
//! §IV-B2 notes the "linear average operation of SRNS … may weaken its
//! effectiveness" — reproduced here by the same linear combination.

use crate::sampler::{draw_uniform_negative, NegativeSampler, SampleContext, ScoreAccess};
use crate::{CoreError, Result};
use bns_stats::Welford;
use rand::Rng;

/// Per-user candidate memory with score-variance statistics.
#[derive(Debug, Clone)]
struct UserMemory {
    items: Vec<u32>,
    stats: Vec<Welford>,
}

/// Variance-aware sampler.
#[derive(Debug, Clone)]
pub struct Srns {
    /// Memory size S₁ per user.
    memory_size: usize,
    /// Number of memory slots examined per draw (S₂).
    sample_size: usize,
    /// Weight α on the standard deviation term.
    alpha: f64,
    /// Probability of refreshing one memory slot after a draw.
    refresh_prob: f64,
    memories: Vec<Option<UserMemory>>,
    /// Reusable buffer for the S₁ memory-item scores of the current draw.
    score_scratch: Vec<f32>,
}

impl Srns {
    /// Creates SRNS with memory size `s1`, per-draw sample size `s2 ≤ s1`,
    /// variance weight `alpha` and per-draw refresh probability.
    pub fn new(s1: usize, s2: usize, alpha: f64, refresh_prob: f64) -> Result<Self> {
        if s1 == 0 || s2 == 0 || s2 > s1 {
            return Err(CoreError::InvalidConfig(
                "SRNS requires 0 < sample_size <= memory_size".into(),
            ));
        }
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(CoreError::InvalidConfig(
                "SRNS alpha must be finite and >= 0".into(),
            ));
        }
        if !(0.0..=1.0).contains(&refresh_prob) {
            return Err(CoreError::InvalidConfig(
                "SRNS refresh_prob must be in [0, 1]".into(),
            ));
        }
        Ok(Self {
            memory_size: s1,
            sample_size: s2,
            alpha,
            refresh_prob,
            memories: Vec::new(),
            score_scratch: Vec::with_capacity(s1),
        })
    }

    /// The paper-aligned default: S₁ = 20, S₂ = 5, α = 1, 20% refresh.
    pub fn paper_default() -> Self {
        Self::new(20, 5, 1.0, 0.2).expect("valid defaults")
    }

    fn memory_for<R: Rng + ?Sized>(
        &mut self,
        u: u32,
        ctx: &SampleContext<'_>,
        rng: &mut R,
    ) -> Option<&mut UserMemory> {
        if self.memories.len() <= u as usize {
            self.memories.resize_with(u as usize + 1, || None);
        }
        if self.memories[u as usize].is_none() {
            let mut items = Vec::with_capacity(self.memory_size);
            for _ in 0..self.memory_size {
                items.push(draw_uniform_negative(ctx.train, u, rng)?);
            }
            let stats = vec![Welford::new(); self.memory_size];
            self.memories[u as usize] = Some(UserMemory { items, stats });
        }
        self.memories[u as usize].as_mut()
    }
}

impl NegativeSampler for Srns {
    fn name(&self) -> &str {
        "SRNS"
    }

    fn sample(
        &mut self,
        u: u32,
        _pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        let sample_size = self.sample_size;
        let alpha = self.alpha;
        let refresh_prob = self.refresh_prob;
        let memory_size = self.memory_size;
        self.memory_for(u, ctx, rng)?;
        let mem = self.memories[u as usize].as_mut().expect("just ensured");

        // Score only the S₁ memory items (one gather-dot; the score_all
        // path paid O(n·d) for the same S₁ reads) and update the running
        // variance statistics.
        self.score_scratch.clear();
        self.score_scratch.resize(mem.items.len(), 0.0);
        ctx.scorer
            .score_items(u, &mem.items, &mut self.score_scratch);
        for (stat, &s) in mem.stats.iter_mut().zip(&self.score_scratch) {
            stat.push(s as f64);
        }

        // Examine S₂ random slots; pick argmax score + α·std.
        let mut best: Option<(f64, u32)> = None;
        for _ in 0..sample_size {
            let slot = rng.random_range(0..memory_size);
            let item = mem.items[slot];
            let value = self.score_scratch[slot] as f64 + alpha * mem.stats[slot].std_dev();
            if best.map(|(v, _)| value > v).unwrap_or(true) {
                best = Some((value, item));
            }
        }

        // Stochastic memory refresh keeps exploration alive.
        if rng.random_range(0.0..1.0) < refresh_prob {
            if let Some(fresh) = draw_uniform_negative(ctx.train, u, rng) {
                let slot = rng.random_range(0..memory_size);
                mem.items[slot] = fresh;
                mem.stats[slot] = Welford::new();
            }
        }
        best.map(|(_, item)| item)
    }

    fn score_access(&self) -> ScoreAccess {
        ScoreAccess::Candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::{Interactions, Popularity};
    use bns_model::scorer::FixedScorer;
    use bns_model::Scorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(Srns::new(0, 1, 1.0, 0.1).is_err());
        assert!(Srns::new(5, 0, 1.0, 0.1).is_err());
        assert!(Srns::new(5, 6, 1.0, 0.1).is_err());
        assert!(Srns::new(5, 5, -1.0, 0.1).is_err());
        assert!(Srns::new(5, 5, 1.0, 1.5).is_err());
        assert!(Srns::new(20, 5, 1.0, 0.2).is_ok());
    }

    fn fixture(n_items: u32) -> (Interactions, Popularity, FixedScorer, Vec<f32>) {
        let train = Interactions::from_pairs(1, n_items, &[(0, 0)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scores: Vec<f32> = (0..n_items).map(|i| i as f32 * 0.1).collect();
        let scorer = FixedScorer::new(1, n_items, scores);
        let mut user_scores = vec![0.0f32; n_items as usize];
        scorer.score_all(0, &mut user_scores);
        (train, pop, scorer, user_scores)
    }

    #[test]
    fn never_samples_positive() {
        let (train, pop, scorer, user_scores) = fixture(30);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut s = Srns::paper_default();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1_000 {
            let j = s.sample(0, 0, &ctx, &mut rng).unwrap();
            assert_ne!(j, 0);
            assert!(j < 30);
        }
    }

    #[test]
    fn favors_high_scores_with_zero_alpha() {
        let (train, pop, scorer, user_scores) = fixture(100);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        // α = 0 → pure max-score over the memory sample.
        let mut s = Srns::new(20, 5, 0.0, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut mean = 0.0f64;
        let n = 4_000;
        for _ in 0..n {
            mean += s.sample(0, 0, &ctx, &mut rng).unwrap() as f64;
        }
        mean /= n as f64;
        assert!(mean > 60.0, "mean selected id {mean} not biased high");
    }

    #[test]
    fn saturated_user_returns_none() {
        let train = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scorer = FixedScorer::new(1, 2, vec![0.0; 2]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &[0.0, 0.0],
            epoch: 0,
        };
        let mut s = Srns::paper_default();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(s.sample(0, 0, &ctx, &mut rng), None);
    }

    #[test]
    fn memory_is_lazily_allocated_per_user() {
        let (train, pop, scorer, user_scores) = fixture(30);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut s = Srns::paper_default();
        assert!(s.memories.is_empty());
        let mut rng = StdRng::seed_from_u64(3);
        s.sample(0, 0, &ctx, &mut rng);
        assert_eq!(s.memories.len(), 1);
        assert!(s.memories[0].is_some());
    }
}
