//! The negative-sampler interface.
//!
//! A sampler receives a `(user, positive)` pair plus read-only model/data
//! context and returns one negative item `j ∈ I⁻ᵤ` for the training triple
//! `(u, i, j)` of the paper's Eq. (1). Each sampler declares, via
//! [`NegativeSampler::score_access`], how much of the model it reads per
//! draw: nothing, a few gathered items, or the full rating vector of
//! Algorithm 1 line 4 — and the trainer pays exactly that cost, no more.

use bns_data::{Interactions, Popularity};
use bns_model::{Scorer, TripleBatch};
use rand::Rng;

/// How much score access a sampler needs per draw — the contract that lets
/// the trainer skip Algorithm 1 line 4 ("get rating vector x̂ᵤ") whenever
/// the sampler can do with less.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreAccess {
    /// No model scores at all. Static samplers (RNS, PNS) are
    /// model-independent exactly as in the paper; the trainer performs
    /// **zero** scoring work for them.
    None,
    /// Scores of a few specific items, fetched by the sampler itself via
    /// [`Scorer::score_items`] (DNS/SRNS candidates, the fused BNS draw).
    /// The trainer precomputes nothing.
    Candidates,
    /// The full rating vector x̂ᵤ, precomputed by the trainer into
    /// [`SampleContext::user_scores`] (AOBPR's global-rank lookup).
    Full,
}

/// Read-only context handed to a sampler for each draw.
pub struct SampleContext<'a> {
    /// The model being trained (score access only).
    pub scorer: &'a dyn Scorer,
    /// Training interactions (defines `I⁺ᵤ` / `I⁻ᵤ`).
    pub train: &'a Interactions,
    /// Training-set item popularity.
    pub popularity: &'a Popularity,
    /// User `u`'s predicted scores for every item, when the sampler's
    /// [`NegativeSampler::score_access`] returned [`ScoreAccess::Full`];
    /// empty slice otherwise. `Candidates` samplers score what they need
    /// through [`SampleContext::scorer`] instead.
    pub user_scores: &'a [f32],
    /// Current 0-based training epoch.
    pub epoch: usize,
}

impl<'a> SampleContext<'a> {
    /// Number of items in the catalog.
    pub fn n_items(&self) -> u32 {
        self.train.n_items()
    }

    /// Whether item `i` is a training positive of `u`.
    pub fn is_positive(&self, u: u32, i: u32) -> bool {
        self.train.contains(u, i)
    }
}

/// A negative-sampling policy.
///
/// Implementations are stateful where their papers require it (AOBPR's rank
/// cache, SRNS's variance memory, BNS-1's λ schedule); state is advanced via
/// [`NegativeSampler::on_epoch_start`].
pub trait NegativeSampler {
    /// Short display name used in tables (`"RNS"`, `"BNS"`, …).
    fn name(&self) -> &str;

    /// Draws one negative for the pair `(u, pos)`.
    ///
    /// Returns `None` iff the user has no negatives (interacted with every
    /// item), which the trainer skips.
    fn sample(
        &mut self,
        u: u32,
        pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32>;

    /// Draws `k` negatives for every pair of `pairs` into the reusable SoA
    /// buffer `out` — the batched form of Algorithm 1 lines 5–13.
    ///
    /// `out` is cleared and refilled with one row per pair **in pair
    /// order**; pairs whose user has no negatives are dropped (so
    /// `out.len() ≤ pairs.len()`). The model is treated as frozen for the
    /// whole batch: implementations may reorder *score* work freely (group
    /// gathers by user, amortize catalog passes) but must keep the **RNG
    /// call sequence and the returned draws identical to this default** —
    /// `k` looped [`NegativeSampler::sample`] calls per pair — which is
    /// what makes `batch_size = 1, k = 1` reproduce the per-pair trace bit
    /// for bit (`tests/batch_equivalence.rs` pins every built-in sampler
    /// to this contract).
    ///
    /// `ctx.user_scores` is empty on the batch path; samplers needing
    /// [`ScoreAccess::Full`] fetch rating vectors themselves (the default
    /// below does it per pair into a local buffer, so only specialized
    /// implementations are allocation-free — every built-in sampler
    /// specializes).
    fn sample_batch(
        &mut self,
        pairs: &[(u32, u32)],
        k: usize,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
        out: &mut TripleBatch,
    ) {
        out.begin_fill(k);
        let mut user_scores: Vec<f32> = Vec::new();
        for &(u, pos) in pairs {
            let full = self.score_access() == ScoreAccess::Full;
            if full {
                user_scores.resize(ctx.train.n_items() as usize, 0.0);
                ctx.scorer.score_all(u, &mut user_scores);
            }
            let pair_ctx = SampleContext {
                scorer: ctx.scorer,
                train: ctx.train,
                popularity: ctx.popularity,
                user_scores: if full { &user_scores } else { &[] },
                epoch: ctx.epoch,
            };
            let row = out.push_row(u, pos);
            let mut filled = 0usize;
            while filled < k {
                match self.sample(u, pos, &pair_ctx, rng) {
                    Some(j) => {
                        row[filled] = j;
                        filled += 1;
                    }
                    None => break,
                }
            }
            if filled < k {
                out.pop_row();
            }
        }
    }

    /// The score access this sampler needs for its next draw (may vary
    /// with sampler state — BNS needs none during its warm-up epochs).
    /// The trainer precomputes the full rating vector only for
    /// [`ScoreAccess::Full`].
    fn score_access(&self) -> ScoreAccess;

    /// Hook called at the start of every epoch, before any sampling.
    fn on_epoch_start(&mut self, _epoch: usize) {}

    /// Drains the sampler's mergeable sufficient statistics accumulated
    /// since the last call (one epoch's worth when drained at epoch
    /// boundaries, as both trainers do).
    ///
    /// Samplers without Bayesian signals return `None` (the default). The
    /// BNS sampler returns the sums behind its per-epoch mean
    /// `info`/`unbias`/risk diagnostics; sharded samplers in the parallel
    /// trainer are drained per worker and merged at the epoch barrier via
    /// [`crate::bns::PosteriorStats::merge`].
    fn take_epoch_stats(&mut self) -> Option<crate::bns::PosteriorStats> {
        None
    }
}

/// Fills `out` with one row per pair, drawing each of the `k` negative
/// slots from `draw` in pair-major, slot-minor order and dropping rows
/// whose draw fails (`None` — a user with no negatives fails on the first
/// slot without consuming RNG). This is the **one** copy of the
/// row-abort contract of `sample_batch`, shared by every sampler whose
/// batched path is a straight per-draw loop (RNS, PNS, SRNS, the BNS
/// warm-up) so the partial-row semantics cannot drift between them.
pub(crate) fn fill_rows(
    pairs: &[(u32, u32)],
    k: usize,
    out: &mut TripleBatch,
    rng: &mut dyn rand::RngCore,
    mut draw: impl FnMut(u32, &mut dyn rand::RngCore) -> Option<u32>,
) {
    out.begin_fill(k);
    for &(u, pos) in pairs {
        let row = out.push_row(u, pos);
        let mut filled = 0usize;
        while filled < k {
            match draw(u, rng) {
                Some(j) => {
                    row[filled] = j;
                    filled += 1;
                }
                None => break,
            }
        }
        if filled < k {
            out.pop_row();
        }
    }
}

/// Fills `order` with the draw indices `0..users.len()` sorted by
/// `(user, index)` — the by-user grouping the batched samplers use to turn
/// per-draw score gathers into one gather (and, for BNS, one Eq. 16
/// catalog pass) per distinct user of the batch. The secondary index key
/// makes the grouping fully deterministic and keeps same-user draws in
/// draw order.
pub(crate) fn group_runs_by_user(users: &[u32], order: &mut Vec<u32>) {
    order.clear();
    order.extend(0..users.len() as u32);
    order.sort_unstable_by_key(|&i| (users[i as usize], i));
}

/// Draws one uniform negative of `u` by rejection against the training
/// positives. Returns `None` when the user has no negatives.
///
/// With the paper's datasets (density ≤ 7%) rejection succeeds in ~1.05
/// tries on average; the loop is additionally capped against adversarial
/// densities by falling back to an exact scan.
pub fn draw_uniform_negative<R: Rng + ?Sized>(
    train: &Interactions,
    u: u32,
    rng: &mut R,
) -> Option<u32> {
    let n_items = train.n_items();
    let degree = train.degree(u) as u32;
    if degree >= n_items {
        return None;
    }
    // Expected tries = n/(n−deg); 64 tries fail with prob < 2^-64 unless the
    // user has interacted with almost everything.
    for _ in 0..64 {
        let i = rng.random_range(0..n_items);
        if !train.contains(u, i) {
            return Some(i);
        }
    }
    // Dense-user fallback: index uniformly into the complement.
    let target = rng.random_range(0..n_items - degree);
    let mut seen = 0u32;
    let positives = train.items_of(u);
    let mut pos_idx = 0usize;
    for i in 0..n_items {
        if pos_idx < positives.len() && positives[pos_idx] == i {
            pos_idx += 1;
            continue;
        }
        if seen == target {
            return Some(i);
        }
        seen += 1;
    }
    unreachable!("complement indexing is exact");
}

/// Fills `out` with `m` uniform negatives of `u` (sampling **with**
/// replacement across slots, as in the paper's candidate sets `Mᵤ`).
/// Returns `false` when the user has no negatives.
pub fn draw_candidate_set<R: Rng + ?Sized>(
    train: &Interactions,
    u: u32,
    m: usize,
    out: &mut Vec<u32>,
    rng: &mut R,
) -> bool {
    out.clear();
    draw_candidate_append(train, u, m, out, rng)
}

/// [`draw_candidate_set`] without the clear: **appends** `m` uniform
/// negatives of `u` to `out` (the batched samplers draw every pair's
/// candidate set straight into one concatenated buffer, no per-draw copy).
/// Consumes the RNG identically to [`draw_candidate_set`]; on failure
/// (user has no negatives — detected before any RNG use) whatever was
/// appended is truncated away and `false` is returned.
pub fn draw_candidate_append<R: Rng + ?Sized>(
    train: &Interactions,
    u: u32,
    m: usize,
    out: &mut Vec<u32>,
    rng: &mut R,
) -> bool {
    let start = out.len();
    for _ in 0..m {
        match draw_uniform_negative(train, u, rng) {
            Some(i) => out.push(i),
            None => {
                out.truncate(start);
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn train() -> Interactions {
        Interactions::from_pairs(2, 6, &[(0, 1), (0, 3), (1, 0)]).unwrap()
    }

    #[test]
    fn uniform_negative_never_returns_positive() {
        let t = train();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..2_000 {
            let j = draw_uniform_negative(&t, 0, &mut rng).unwrap();
            assert!(!t.contains(0, j), "sampled positive {j}");
            assert!(j < 6);
        }
    }

    #[test]
    fn uniform_negative_is_uniform_over_complement() {
        let t = train();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 6];
        let n = 40_000;
        for _ in 0..n {
            counts[draw_uniform_negative(&t, 0, &mut rng).unwrap() as usize] += 1;
        }
        // Negatives of user 0: {0, 2, 4, 5} — each should get ~25%.
        for &i in &[0usize, 2, 4, 5] {
            let f = counts[i] as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.02, "item {i}: frequency {f}");
        }
        assert_eq!(counts[1] + counts[3], 0);
    }

    #[test]
    fn saturated_user_returns_none() {
        let t = Interactions::from_pairs(1, 3, &[(0, 0), (0, 1), (0, 2)]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(draw_uniform_negative(&t, 0, &mut rng), None);
    }

    #[test]
    fn dense_user_fallback_is_exact() {
        // User with all but one item: rejection will almost surely exhaust
        // its 64 tries and hit the exact-complement fallback.
        let n = 2_000u32;
        let pairs: Vec<(u32, u32)> = (0..n - 1).map(|i| (0, i)).collect();
        let t = Interactions::from_pairs(1, n, &pairs).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert_eq!(draw_uniform_negative(&t, 0, &mut rng), Some(n - 1));
        }
    }

    #[test]
    fn candidate_set_size_and_validity() {
        let t = train();
        let mut rng = StdRng::seed_from_u64(4);
        let mut out = Vec::new();
        assert!(draw_candidate_set(&t, 0, 5, &mut out, &mut rng));
        assert_eq!(out.len(), 5);
        for &j in &out {
            assert!(!t.contains(0, j));
        }
    }

    #[test]
    fn candidate_set_fails_for_saturated_user() {
        let t = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut out = vec![9, 9];
        assert!(!draw_candidate_set(&t, 0, 3, &mut out, &mut rng));
    }
}
