//! PNS — Popularity-biased Negative Sampling.
//!
//! Samples item `j` with probability `∝ popⱼ^0.75` (the word2vec exponent,
//! §IV-A2 / §V of the paper), rejecting the user's training positives. The
//! alias table makes each accepted draw O(1).
//!
//! Items never interacted with in training have weight 0 and are never
//! sampled — faithful to the original formulations, and one of the reasons
//! the paper finds PNS *underperforms* RNS (it concentrates negative
//! gradient on popular items, which are disproportionately false negatives).

use crate::sampler::{NegativeSampler, SampleContext, ScoreAccess};
use crate::{CoreError, Result};
use bns_data::Popularity;
use bns_model::TripleBatch;
use bns_stats::AliasTable;

/// Popularity-biased sampler with a precomputed alias table.
#[derive(Debug, Clone)]
pub struct Pns {
    table: AliasTable,
}

impl Pns {
    /// Builds the `r^0.75` alias table from training popularity.
    pub fn new(popularity: &Popularity) -> Result<Self> {
        let weights = popularity.pns_weights();
        let table = AliasTable::new(&weights)
            .map_err(|e| CoreError::InvalidConfig(format!("PNS weight table: {e}")))?;
        Ok(Self { table })
    }
}

impl Pns {
    /// One alias-table draw with rejection against `u`'s positives (shared
    /// by the per-pair and batched paths so they cannot drift).
    fn draw(
        &mut self,
        u: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        if ctx.train.n_negatives(u) == 0 {
            return None;
        }
        // Rejection against positives. A user could in principle own every
        // positive-weight item; cap tries and fall back to uniform.
        for _ in 0..256 {
            let j = self.table.sample(rng) as u32;
            if !ctx.train.contains(u, j) {
                return Some(j);
            }
        }
        crate::sampler::draw_uniform_negative(ctx.train, u, rng)
    }
}

impl NegativeSampler for Pns {
    fn name(&self) -> &str {
        "PNS"
    }

    fn sample(
        &mut self,
        u: u32,
        _pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        self.draw(u, ctx, rng)
    }

    /// Bulk draw straight off the alias table — no per-pair dispatch.
    /// Draw-for-draw identical to looping [`NegativeSampler::sample`].
    fn sample_batch(
        &mut self,
        pairs: &[(u32, u32)],
        k: usize,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
        out: &mut TripleBatch,
    ) {
        crate::sampler::fill_rows(pairs, k, out, rng, |u, rng| self.draw(u, ctx, rng));
    }

    fn score_access(&self) -> ScoreAccess {
        ScoreAccess::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use bns_model::scorer::FixedScorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Interactions, Popularity) {
        // Item popularity: item 0 → 3 interactions, item 1 → 1, items 2,3 → 0.
        let train = Interactions::from_pairs(4, 4, &[(0, 0), (1, 0), (2, 0), (3, 1)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        (train, pop)
    }

    #[test]
    fn oversamples_popular_items() {
        let (train, pop) = setup();
        let mut pns = Pns::new(&pop).unwrap();
        let scorer = FixedScorer::new(4, 4, vec![0.0; 16]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &[],
            epoch: 0,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut count0 = 0;
        let mut count1 = 0;
        let n = 20_000;
        // User 3 interacted with item 1, so its negatives are {0, 2, 3}.
        for _ in 0..n {
            match pns.sample(3, 1, &ctx, &mut rng).unwrap() {
                0 => count0 += 1,
                1 => panic!("sampled the user's positive"),
                _ => count1 += 1,
            }
        }
        // Items 2, 3 have zero weight: everything must land on item 0.
        assert_eq!(count0, n);
        assert_eq!(count1, 0);
    }

    #[test]
    fn ratio_follows_r075() {
        let (_, pop) = setup();
        // Unrestricted draws (user 2's negatives are {1, 2, 3}; use user with
        // no overlap instead): craft a user space where nothing is positive.
        let empty_train = Interactions::from_pairs(1, 4, &[]).unwrap();
        let mut pns = Pns::new(&pop).unwrap();
        let scorer = FixedScorer::new(1, 4, vec![0.0; 4]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &empty_train,
            popularity: &pop,
            user_scores: &[],
            epoch: 0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[pns.sample(0, 0, &ctx, &mut rng).unwrap() as usize] += 1;
        }
        // Expected ratio item0:item1 = 3^0.75 : 1 ≈ 2.2795.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 3f64.powf(0.75)).abs() < 0.15, "ratio = {ratio}");
        assert_eq!(counts[2] + counts[3], 0);
    }

    #[test]
    fn all_zero_popularity_is_config_error() {
        let pop = Popularity::from_counts(vec![0, 0]);
        assert!(Pns::new(&pop).is_err());
    }
}
