//! AOBPR — Adaptive Oversampling for BPR (Rendle & Freudenthaler, WSDM 2014).
//!
//! Samples a *rank* `r` with probability `∝ exp(−r/λ)` and returns the item
//! currently at global rank `r` in the user's predicted score vector
//! ("over-sampling global higher ranked negatives", §IV-A2 of the paper).
//!
//! The original paper amortizes rank lookups with factor-wise sampling
//! tricks; at this reproduction's scale an exact selection
//! (`select_nth_unstable` on a scratch copy of the score vector, O(n)) per
//! draw is faster than maintaining stale rank caches and keeps the sampler
//! exact. The λ parameter is expressed as a fraction of the catalog so the
//! same config transfers across dataset scales.

use crate::sampler::{group_runs_by_user, NegativeSampler, SampleContext, ScoreAccess};
use crate::{CoreError, Result};
use bns_model::TripleBatch;
use bns_stats::dist::{Continuous, Exponential};

/// Rank-exponential oversampler.
#[derive(Debug, Clone)]
pub struct Aobpr {
    /// λ as a fraction of the item count.
    lambda_frac: f64,
    /// Scratch buffer of `(score, item)` pairs.
    scratch: Vec<(f32, u32)>,
    /// Batched-draw buffers (per-draw users/ranks, the by-user grouping
    /// index, and the per-user rating vector of the grouped pass).
    draw_users: Vec<u32>,
    draw_ranks: Vec<u32>,
    order: Vec<u32>,
    score_buf: Vec<f32>,
}

impl Aobpr {
    /// Creates AOBPR with `λ = lambda_frac · n_items` (default 0.05 — the
    /// mass concentrates on the top ~5% of ranks).
    pub fn new(lambda_frac: f64) -> Result<Self> {
        if lambda_frac <= 0.0 || !lambda_frac.is_finite() {
            return Err(CoreError::InvalidConfig(
                "AOBPR lambda fraction must be finite and > 0".into(),
            ));
        }
        Ok(Self {
            lambda_frac,
            scratch: Vec::new(),
            draw_users: Vec::new(),
            draw_ranks: Vec::new(),
            order: Vec::new(),
            score_buf: Vec::new(),
        })
    }

    /// The configured λ fraction.
    pub fn lambda_frac(&self) -> f64 {
        self.lambda_frac
    }

    /// Samples a rank `∼ Exp(λ)` truncated to the negative count — the only
    /// randomness of a draw, independent of every score.
    fn sample_rank(&self, n_items: usize, n_negs: usize, rng: &mut dyn rand::RngCore) -> usize {
        let lambda = (self.lambda_frac * n_items as f64).max(1.0);
        let exp = Exponential::new(1.0 / lambda).expect("positive rate");
        (exp.sample(rng).floor() as usize).min(n_negs - 1)
    }

    /// Rebuilds `scratch` with `(score, item)` for every negative of `u`
    /// (ascending item order) and selects the item at descending-score rank
    /// `rank`. Rebuilt per draw so the `select_nth_unstable` permutation of
    /// a previous draw can never leak into tie resolution.
    fn select_at_rank(
        scratch: &mut Vec<(f32, u32)>,
        user_scores: &[f32],
        positives: &[u32],
        rank: usize,
    ) -> u32 {
        scratch.clear();
        let mut pos_idx = 0usize;
        for (i, &s) in user_scores.iter().enumerate() {
            let i = i as u32;
            if pos_idx < positives.len() && positives[pos_idx] == i {
                pos_idx += 1;
                continue;
            }
            scratch.push((s, i));
        }
        scratch
            .select_nth_unstable_by(rank, |a, b| {
                b.0.partial_cmp(&a.0).expect("scores are finite")
            })
            .1
             .1
    }
}

impl NegativeSampler for Aobpr {
    fn name(&self) -> &str {
        "AOBPR"
    }

    fn sample(
        &mut self,
        u: u32,
        _pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        let n_items = ctx.n_items() as usize;
        let n_negs = ctx.train.n_negatives(u);
        if n_negs == 0 {
            return None;
        }
        debug_assert_eq!(ctx.user_scores.len(), n_items);
        let rank = self.sample_rank(n_items, n_negs, rng);
        Some(Self::select_at_rank(
            &mut self.scratch,
            ctx.user_scores,
            ctx.train.items_of(u),
            rank,
        ))
    }

    /// The batched draw: ranks (the only RNG) are sampled per `(pair,
    /// slot)` in pair order, then the batch is grouped by user and the full
    /// rating vector of Algorithm 1 line 4 is computed **once per distinct
    /// user** instead of once per pair. Rank selection itself is rebuilt
    /// per draw, so the draws equal the looped per-pair path exactly.
    fn sample_batch(
        &mut self,
        pairs: &[(u32, u32)],
        k: usize,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
        out: &mut TripleBatch,
    ) {
        out.begin_fill(k);
        let n_items = ctx.n_items() as usize;
        self.draw_users.clear();
        self.draw_ranks.clear();

        // Phase A (all the RNG): one truncated-exponential rank per slot.
        for &(u, pos) in pairs {
            let n_negs = ctx.train.n_negatives(u);
            if n_negs == 0 {
                continue;
            }
            out.push_row(u, pos);
            for _ in 0..k {
                let rank = self.sample_rank(n_items, n_negs, rng);
                self.draw_users.push(u);
                self.draw_ranks.push(rank as u32);
            }
        }

        // Phase B: one score_all per distinct user; per-draw rank select.
        group_runs_by_user(&self.draw_users, &mut self.order);
        let negs = out.negs_mut();
        let mut run = 0usize;
        while run < self.order.len() {
            let user = self.draw_users[self.order[run] as usize];
            self.score_buf.resize(n_items, 0.0);
            ctx.scorer.score_all(user, &mut self.score_buf);
            let positives = ctx.train.items_of(user);
            while run < self.order.len() && self.draw_users[self.order[run] as usize] == user {
                let d = self.order[run] as usize;
                negs[d] = Self::select_at_rank(
                    &mut self.scratch,
                    &self.score_buf,
                    positives,
                    self.draw_ranks[d] as usize,
                );
                run += 1;
            }
        }
    }

    fn score_access(&self) -> ScoreAccess {
        // Rank-`r` selection is global: it genuinely needs every score of
        // the user (Algorithm 1 line 4), unlike the candidate samplers.
        ScoreAccess::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::{Interactions, Popularity};
    use bns_model::scorer::FixedScorer;
    use bns_model::Scorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Aobpr::new(0.0).is_err());
        assert!(Aobpr::new(f64::NAN).is_err());
        assert!((Aobpr::new(0.05).unwrap().lambda_frac() - 0.05).abs() < 1e-12);
    }

    fn context_fixture(
        n_items: u32,
        positives: &[(u32, u32)],
    ) -> (Interactions, Popularity, FixedScorer, Vec<f32>) {
        let train = Interactions::from_pairs(1, n_items, positives).unwrap();
        let pop = Popularity::from_interactions(&train);
        // Score increases with item id → top rank = highest id.
        let scores: Vec<f32> = (0..n_items).map(|i| i as f32).collect();
        let scorer = FixedScorer::new(1, n_items, scores);
        let mut user_scores = vec![0.0f32; n_items as usize];
        scorer.score_all(0, &mut user_scores);
        (train, pop, scorer, user_scores)
    }

    #[test]
    fn oversamples_top_ranked_negatives() {
        let (train, pop, scorer, user_scores) = context_fixture(100, &[(0, 99)]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut s = Aobpr::new(0.05).unwrap(); // λ = 5 ranks
        let mut rng = StdRng::seed_from_u64(0);
        let mut top10 = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let j = s.sample(0, 99, &ctx, &mut rng).unwrap();
            assert_ne!(j, 99, "sampled the positive");
            // Top-10 negatives by score are items 89..=98.
            if j >= 89 {
                top10 += 1;
            }
        }
        let frac = top10 as f64 / n as f64;
        // With λ = 5, P(rank < 10) = 1 − e^{−2} ≈ 0.86.
        assert!(frac > 0.7, "top-10 fraction {frac}");
    }

    #[test]
    fn never_samples_positives_even_at_top_rank() {
        // The positive IS the highest-scored item; rank 0 among negatives
        // must skip it.
        let (train, pop, scorer, user_scores) = context_fixture(50, &[(0, 49), (0, 48)]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut s = Aobpr::new(0.01).unwrap(); // extremely peaked: rank ≈ 0
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let j = s.sample(0, 49, &ctx, &mut rng).unwrap();
            assert!(j != 49 && j != 48, "sampled positive {j}");
        }
    }

    #[test]
    fn saturated_user_returns_none() {
        let (train, pop, scorer, user_scores) = context_fixture(2, &[(0, 0), (0, 1)]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut s = Aobpr::new(0.05).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(s.sample(0, 0, &ctx, &mut rng), None);
    }
}
