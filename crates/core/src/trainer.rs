//! Algorithm 1 — the BPR training loop with pluggable negative sampling.
//!
//! For each epoch: shuffle the training pairs, then process them in
//! mini-batches through the SoA [`TripleBatch`] pipeline — a **fill
//! phase** where the sampler draws [`TrainConfig::k_negatives`] negatives
//! per pair ([`crate::NegativeSampler::sample_batch`], Algorithm 1 lines
//! 5–13 batched) against the batch-start model state, and an **update
//! phase** where the model consumes the whole batch
//! ([`bns_model::PairwiseModel::update_batch`], line 14). Observers
//! receive every applied triple (the TNR/INF quality probes of Fig. 4
//! hook in here) and an end-of-epoch callback (ranking evaluation,
//! score-distribution probes).
//!
//! [`train`] is the **serial, bit-exact** engine: one RNG stream, one
//! deterministic schedule, reproducible to the bit (guarded by
//! `tests/trainer_repro_guard.rs`). At `batch_size = 1, k_negatives = 1`
//! — the paper's MF setup — the batched pipeline consumes the RNG and
//! applies updates exactly like the historical one-triple-at-a-time loop,
//! so the pre-batching training trace is preserved bit for bit
//! (`tests/batch_equivalence.rs` pins the sampler side of that contract;
//! the blocked MF group update pins the model side). The multi-core
//! engine in [`crate::parallel`] shares the same fill/update cycle and
//! differs only in how updates are applied.

use crate::bns::PosteriorStats;
use crate::sampler::{NegativeSampler, SampleContext, ScoreAccess};
use crate::{CoreError, Result};
use bns_data::{Dataset, Interactions, Popularity};
use bns_model::{PairwiseModel, Scorer, TripleBatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training-loop configuration.
///
/// # Paper defaults
///
/// [`TrainConfig::paper_mf`] pins the paper's §IV-B1 MF setup
/// (`batch_size = 1`, constant learning rate 0.01, L2 = 0.01);
/// [`TrainConfig::paper_lightgcn`] pins the LightGCN setup (caller-chosen
/// batch size — 128, or 1024 on MovieLens-1M — with the step-decayed
/// learning rate of `SgdConfig::paper_lightgcn`). Both take `epochs`
/// explicitly because the paper trains 100 epochs at full scale while the
/// scaled-down experiment harness defaults to 40.
///
/// # Forward compatibility
///
/// New knobs may be added to this struct in future releases (parallel
/// training, for example, arrived as a *separate*
/// [`crate::parallel::ParallelConfig`] precisely so this struct's layout
/// stayed stable). Downstream code should construct it through the
/// `paper_*` constructors and functional-update syntax
/// (`TrainConfig { epochs: 10, ..TrainConfig::paper_mf(10, 0) }`) rather
/// than exhaustive struct literals, so added fields do not break it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs `T`. Paper: 100 (§IV-B1); harness default: 40.
    pub epochs: usize,
    /// Mini-batch size. Paper: 1 for MF; 128 for LightGCN (1024 on
    /// MovieLens-1M).
    pub batch_size: usize,
    /// Negatives sampled per positive pair, the `k` of the
    /// [`bns_model::TripleBatch`] pipeline. Algorithm 1 of the paper is
    /// `k = 1` (the default and the setting of every paper table); `k > 1`
    /// is the multi-negative extension that feeds adaptive-hardness and
    /// contrastive-style workloads (each of the `k` negatives is applied as
    /// one BPR triple — MF folds them into one blocked group update).
    pub k_negatives: usize,
    /// SGD hyperparameters. Paper: learning rate 0.01 and L2 regularization
    /// 0.01 for both models; LightGCN additionally step-decays the rate.
    pub sgd: bns_model::SgdConfig,
    /// Seed for shuffling and sampling. The paper does not fix seeds; this
    /// reproduction treats the seed as part of the experiment identity
    /// (see `tests/trainer_repro_guard.rs`).
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's MF setup at `epochs` epochs.
    pub fn paper_mf(epochs: usize, seed: u64) -> Self {
        Self {
            epochs,
            batch_size: 1,
            k_negatives: 1,
            sgd: bns_model::SgdConfig::paper_mf(),
            seed,
        }
    }

    /// The paper's LightGCN setup at `epochs` epochs.
    pub fn paper_lightgcn(epochs: usize, batch_size: usize, seed: u64) -> Self {
        Self {
            epochs,
            batch_size,
            k_negatives: 1,
            sgd: bns_model::SgdConfig::paper_lightgcn(),
            seed,
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(CoreError::InvalidConfig("epochs must be > 0".into()));
        }
        if self.batch_size == 0 {
            return Err(CoreError::InvalidConfig("batch_size must be > 0".into()));
        }
        if self.k_negatives == 0 {
            return Err(CoreError::InvalidConfig("k_negatives must be > 0".into()));
        }
        self.sgd.validate().map_err(CoreError::from)
    }
}

/// Callbacks fired by the training loop.
pub trait TrainObserver {
    /// One triple was sampled and applied. `info` is Eq. (4)'s gradient
    /// magnitude for the sampled negative.
    fn on_triple(&mut self, epoch: usize, u: u32, pos: u32, neg: u32, info: f32);

    /// An epoch finished; the model is in a consistent (scoreable) state.
    fn on_epoch_end(&mut self, epoch: usize, model: &dyn Scorer);
}

/// An observer that does nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl TrainObserver for NoopObserver {
    fn on_triple(&mut self, _: usize, _: u32, _: u32, _: u32, _: f32) {}
    fn on_epoch_end(&mut self, _: usize, _: &dyn Scorer) {}
}

/// Summary statistics of a completed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Total triples applied.
    pub triples: usize,
    /// Pairs skipped because the user had no negatives.
    pub skipped: usize,
    /// Mean `info` per epoch (the INF numerator without labels).
    pub mean_info_per_epoch: Vec<f64>,
    /// Per-epoch sufficient statistics of the sampler's Bayesian signals
    /// (Eq. 15/16/17/32 sums for the selected negatives), drained via
    /// [`NegativeSampler::take_epoch_stats`]. All-zero entries for samplers
    /// that expose none (RNS, PNS, …); merged across shards by the
    /// parallel trainer.
    pub posterior_per_epoch: Vec<PosteriorStats>,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
}

/// Algorithm 1 lines 4–13 for one `(u, pos)` pair: refresh the user's
/// rating vector `x̂ᵤ` when the sampler asks for [`ScoreAccess::Full`],
/// then draw one negative.
///
/// This is the **per-pair** sampling step — the reference the batched
/// pipeline is equivalence-tested against (`tests/batch_equivalence.rs`)
/// and the baseline the benches compare batched throughput to. The
/// training engines themselves go through
/// [`crate::NegativeSampler::sample_batch`].
/// `user_scores` is the caller's reusable rating-vector buffer: it is
/// grown to `train.n_items()` and overwritten **only** under `Full`
/// access, so callers pass `Vec::new()` and never pay a catalog-sized
/// allocation unless the sampler actually demands the full vector.
/// `ScoreAccess::None` samplers trigger zero scoring work, and
/// `Candidates` samplers gather the few scores they need through the
/// context's [`Scorer::score_items`].
#[allow(clippy::too_many_arguments)] // the flat locals of Algorithm 1's inner loop
pub fn sample_pair(
    sampler: &mut dyn NegativeSampler,
    scorer: &dyn Scorer,
    train: &Interactions,
    popularity: &Popularity,
    user_scores: &mut Vec<f32>,
    u: u32,
    pos: u32,
    epoch: usize,
    rng: &mut dyn rand::RngCore,
) -> Option<u32> {
    let full = sampler.score_access() == ScoreAccess::Full;
    if full {
        user_scores.resize(train.n_items() as usize, 0.0);
        scorer.score_all(u, user_scores);
    }
    let ctx = SampleContext {
        scorer,
        train,
        popularity,
        user_scores: if full { user_scores } else { &[] },
        epoch,
    };
    sampler.sample(u, pos, &ctx, rng)
}

/// Trains `model` on `dataset.train()` with the given sampler.
///
/// This is Algorithm 1 of the paper with the sampler abstracted: lines 5–13
/// are [`NegativeSampler::sample`], line 14 is the model's BPR update.
///
/// The condensed `examples/quickstart.rs` flow — dataset, MF model, BNS
/// sampler, paper hyperparameters:
///
/// ```
/// use bns_core::bns::prior::PopularityPrior;
/// use bns_core::{train, BnsConfig, BnsSampler, NoopObserver, TrainConfig};
/// use bns_data::{Dataset, Interactions};
/// use bns_model::MatrixFactorization;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let train_set = Interactions::from_pairs(2, 6, &[(0, 0), (0, 1), (1, 3), (1, 4)])?;
/// let test_set = Interactions::from_pairs(2, 6, &[(0, 2), (1, 5)])?;
/// let dataset = Dataset::new("doc", train_set, test_set)?;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut model = MatrixFactorization::new(dataset.n_users(), dataset.n_items(), 8, 0.1, &mut rng)?;
/// let mut sampler = BnsSampler::new(
///     BnsConfig::default(), // |Mᵤ| = 5, λ = 5, min-risk rule (Eq. 32)
///     Box::new(PopularityPrior::new(dataset.popularity())),
/// )?;
///
/// // Paper MF setup: batch 1, lr 0.01, reg 0.01.
/// let config = TrainConfig::paper_mf(3, 42);
/// let stats = train(&mut model, &dataset, &mut sampler, &config, &mut NoopObserver)?;
/// assert_eq!(stats.triples, 3 * dataset.train().len());
/// assert_eq!(stats.mean_info_per_epoch.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn train<M: PairwiseModel>(
    model: &mut M,
    dataset: &Dataset,
    sampler: &mut dyn NegativeSampler,
    config: &TrainConfig,
    observer: &mut dyn TrainObserver,
) -> Result<TrainStats> {
    config.validate()?;
    if model.n_users() != dataset.n_users() || model.n_items() != dataset.n_items() {
        return Err(CoreError::InvalidConfig(format!(
            "model shape ({} users × {} items) does not match dataset ({} × {})",
            model.n_users(),
            model.n_items(),
            dataset.n_users(),
            dataset.n_items()
        )));
    }

    // lint:allow(wall-clock) — wall_seconds is reporting-only output; the
    // training trace never branches on it.
    let started = std::time::Instant::now();
    let train_set = dataset.train();
    let popularity = dataset.popularity();
    let mut pairs: Vec<(u32, u32)> = train_set.iter_pairs().collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Reusable SoA batch buffer and per-triple info output — the whole
    // fill/update cycle below is allocation-free in steady state.
    let mut batch_buf = TripleBatch::new();
    let mut infos: Vec<f32> = Vec::new();

    let mut stats = TrainStats {
        triples: 0,
        skipped: 0,
        mean_info_per_epoch: Vec::with_capacity(config.epochs),
        posterior_per_epoch: Vec::with_capacity(config.epochs),
        wall_seconds: 0.0,
    };

    for epoch in 0..config.epochs {
        let lr = config.sgd.lr.at(epoch);
        model.begin_epoch(epoch);
        sampler.on_epoch_start(epoch);
        pairs.shuffle(&mut rng);

        let mut info_sum = 0.0f64;
        let mut info_count = 0usize;

        for batch in pairs.chunks(config.batch_size) {
            model.begin_batch();
            // Fill phase: the sampler draws k negatives per pair against
            // the batch-start model state (Algorithm 1 lines 5–13, batched;
            // at batch_size = 1 this is exactly the per-pair schedule).
            {
                let ctx = SampleContext {
                    scorer: &*model,
                    train: train_set,
                    popularity,
                    user_scores: &[],
                    epoch,
                };
                sampler.sample_batch(batch, config.k_negatives, &ctx, &mut rng, &mut batch_buf);
            }
            stats.skipped += batch.len() - batch_buf.len();
            // Update phase: the model consumes the whole batch (line 14).
            model.update_batch(&batch_buf, lr, config.sgd.reg, &mut infos);
            debug_assert_eq!(infos.len(), batch_buf.n_triples());
            let mut slot = 0usize;
            for (u, pos, negs) in batch_buf.iter() {
                for &neg in negs {
                    debug_assert!(
                        !train_set.contains(u, neg),
                        "sampler returned a training positive"
                    );
                    observer.on_triple(epoch, u, pos, neg, infos[slot]);
                    info_sum += infos[slot] as f64;
                    slot += 1;
                }
            }
            info_count += infos.len();
            stats.triples += infos.len();
            model.end_batch(lr, config.sgd.reg);
        }

        stats.mean_info_per_epoch.push(if info_count == 0 {
            0.0
        } else {
            info_sum / info_count as f64
        });
        stats
            .posterior_per_epoch
            .push(sampler.take_epoch_stats().unwrap_or_default());
        observer.on_epoch_end(epoch, model as &dyn Scorer);
    }

    stats.wall_seconds = started.elapsed().as_secs_f64();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rns::Rns;
    use bns_data::{Dataset, Interactions};
    use bns_model::MatrixFactorization;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> Dataset {
        // 4 users × 8 items with a clear block structure: users 0,1 like
        // items 0..4; users 2,3 like items 4..8.
        let train = Interactions::from_pairs(
            4,
            8,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 4),
                (2, 5),
                (2, 6),
                (3, 5),
                (3, 6),
                (3, 7),
            ],
        )
        .unwrap();
        let test = Interactions::from_pairs(4, 8, &[(0, 3), (1, 0), (2, 7), (3, 4)]).unwrap();
        Dataset::new("tiny", train, test).unwrap()
    }

    fn mf(seed: u64, d: &Dataset) -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(seed);
        MatrixFactorization::new(d.n_users(), d.n_items(), 8, 0.1, &mut rng).unwrap()
    }

    #[test]
    fn config_validation() {
        let d = tiny_dataset();
        let mut m = mf(0, &d);
        let mut s = Rns;
        let bad = TrainConfig {
            epochs: 0,
            ..TrainConfig::paper_mf(1, 0)
        };
        assert!(train(&mut m, &d, &mut s, &bad, &mut NoopObserver).is_err());
        let bad = TrainConfig {
            batch_size: 0,
            ..TrainConfig::paper_mf(1, 0)
        };
        assert!(train(&mut m, &d, &mut s, &bad, &mut NoopObserver).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let d = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let mut wrong = MatrixFactorization::new(2, 8, 4, 0.1, &mut rng).unwrap();
        let mut s = Rns;
        assert!(train(
            &mut wrong,
            &d,
            &mut s,
            &TrainConfig::paper_mf(1, 0),
            &mut NoopObserver
        )
        .is_err());
    }

    #[test]
    fn trains_and_counts_triples() {
        let d = tiny_dataset();
        let mut m = mf(1, &d);
        let mut s = Rns;
        let cfg = TrainConfig::paper_mf(5, 7);
        let stats = train(&mut m, &d, &mut s, &cfg, &mut NoopObserver).unwrap();
        assert_eq!(stats.triples, 5 * d.train().len());
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.mean_info_per_epoch.len(), 5);
        assert!(stats.wall_seconds >= 0.0);
    }

    #[test]
    fn learning_separates_blocks() {
        let d = tiny_dataset();
        let mut m = mf(2, &d);
        let mut s = Rns;
        let cfg = TrainConfig::paper_mf(60, 3);
        train(&mut m, &d, &mut s, &cfg, &mut NoopObserver).unwrap();
        // User 0 must now rank its block's items above the other block's.
        let own: f32 = (0..4).map(|i| m.score(0, i)).sum();
        let other: f32 = (4..8).map(|i| m.score(0, i)).sum();
        assert!(own > other, "block structure not learned: {own} vs {other}");
    }

    #[test]
    fn observer_sees_every_triple() {
        struct Counter {
            triples: usize,
            epochs: usize,
        }
        impl TrainObserver for Counter {
            fn on_triple(&mut self, _: usize, u: u32, pos: u32, neg: u32, info: f32) {
                assert!(u < 4 && pos < 8 && neg < 8);
                assert!((0.0..=1.0).contains(&info));
                self.triples += 1;
            }
            fn on_epoch_end(&mut self, _: usize, model: &dyn Scorer) {
                assert_eq!(model.n_users(), 4);
                self.epochs += 1;
            }
        }
        let d = tiny_dataset();
        let mut m = mf(3, &d);
        let mut s = Rns;
        let mut obs = Counter {
            triples: 0,
            epochs: 0,
        };
        let cfg = TrainConfig::paper_mf(3, 11);
        let stats = train(&mut m, &d, &mut s, &cfg, &mut obs).unwrap();
        assert_eq!(obs.triples, stats.triples);
        assert_eq!(obs.epochs, 3);
    }

    #[test]
    fn reproducible_under_seed() {
        let d = tiny_dataset();
        let mut m1 = mf(4, &d);
        let mut m2 = mf(4, &d);
        let mut s1 = Rns;
        let mut s2 = Rns;
        let cfg = TrainConfig::paper_mf(4, 13);
        train(&mut m1, &d, &mut s1, &cfg, &mut NoopObserver).unwrap();
        train(&mut m2, &d, &mut s2, &cfg, &mut NoopObserver).unwrap();
        for u in 0..4 {
            for i in 0..8 {
                assert_eq!(m1.score(u, i), m2.score(u, i));
            }
        }
    }

    #[test]
    fn batch_training_works_with_lightgcn() {
        use bns_model::LightGcn;
        let d = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = LightGcn::new(d.train(), 8, 1, 0.1, &mut rng).unwrap();
        let mut s = Rns;
        let cfg = TrainConfig::paper_lightgcn(10, 4, 17);
        let stats = train(&mut m, &d, &mut s, &cfg, &mut NoopObserver).unwrap();
        assert_eq!(stats.triples, 10 * d.train().len());
        // Block structure should begin to emerge.
        let own: f32 = (0..4).map(|i| m.score(0, i)).sum();
        let other: f32 = (4..8).map(|i| m.score(0, i)).sum();
        assert!(own > other);
    }
}
