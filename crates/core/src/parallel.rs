//! The sharded multi-core training engine.
//!
//! [`ParallelTrainer`] partitions the training pairs into per-thread user
//! shards (`u mod threads`), runs hogwild-style lock-free SGD epochs on a
//! [`HogwildMf`] via [`std::thread::scope`], and merges per-shard
//! statistics at epoch barriers. Each worker owns
//!
//! * its **own seeded RNG stream** (derived from the run seed and shard
//!   id with a SplitMix64 step, so streams are decorrelated and the run
//!   is reproducible *up to* hogwild write interleaving);
//! * its **own negative-sampler instance** built from the shared
//!   [`SamplerConfig`], so stateful samplers (SRNS memory, BNS λ/posterior
//!   accumulators) never need locks;
//! * a private [`TripleBatch`] pipeline: each worker fills its batch via
//!   `NegativeSampler::sample_batch` (score gathers grouped by user,
//!   straight from the shared hogwild tables through `Scorer::score_items`)
//!   and applies it with [`HogwildMf::apply_batch`], whose group updates
//!   batch the atomic stores.
//!
//! Sharding by user makes user-embedding updates race-free (each user row
//! has exactly one writer); item rows are shared and updated with the
//! relaxed-atomic hogwild contract of [`bns_model::hogwild`]. The BNS
//! per-triple computations — the Eq. (15) unbias posterior and the
//! Eq. (32) risk rule — depend only on the shared read-only score state,
//! so they shard cleanly; their per-shard sufficient statistics
//! ([`PosteriorStats`]) are drained from every worker and merged at each
//! epoch barrier.
//!
//! # Determinism
//!
//! [`Determinism::BitExact`] runs the serial engine ([`crate::train`]) —
//! one thread, one RNG stream, the exact trace pinned by
//! `tests/trainer_repro_guard.rs`. [`Determinism::Hogwild`] trades that
//! bit-level trace for multi-core throughput: per-worker streams stay
//! seeded, but concurrent item-row writes interleave nondeterministically,
//! so only statistical reproducibility (final metric tolerance, see
//! `tests/parallel_equivalence.rs`) is guaranteed.
//!
//! # Observers
//!
//! `on_epoch_end` fires on the coordinating thread at every barrier with
//! the shared model, exactly as in the serial engine. Per-triple
//! `on_triple` callbacks are **not** delivered in hogwild mode — fanning
//! every worker's triples through one `&mut` observer would serialize the
//! hot path. Probes that need per-triple access (Fig. 4's TNR/INF) should
//! run on the serial engine.

use crate::bns::PosteriorStats;
use crate::factory::{build_sampler, SamplerConfig};
use crate::sampler::SampleContext;
use crate::trainer::{TrainConfig, TrainObserver, TrainStats};
use crate::{CoreError, Result};
use bns_data::{Dataset, Occupations};
use bns_model::{HogwildMf, HogwildScratch, MatrixFactorization, Scorer, TripleBatch};
use bns_sync::PoisonFlag;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::panic::AssertUnwindSafe;
use std::sync::{Barrier, Mutex};

/// How strictly a parallel run must reproduce the serial trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Determinism {
    /// Bit-for-bit identical to the serial engine: same triples, same
    /// update order, same final parameters. Requires `threads == 1`
    /// (single-writer), and is the mode the reproducibility guards run in.
    BitExact,
    /// Hogwild-style lock-free parallelism: per-shard RNG streams are
    /// seeded and the *final metrics* are statistically equivalent to a
    /// serial run, but item-row write interleavings (and therefore exact
    /// parameters) vary run to run.
    Hogwild,
}

/// Configuration of the sharded engine, separate from [`TrainConfig`] so
/// the serial trainer's layout stays stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// Worker threads (= user shards). Must be ≥ 1; in
    /// [`Determinism::BitExact`] mode it must be exactly 1.
    pub threads: usize,
    /// Reproducibility contract of the run.
    pub determinism: Determinism,
}

impl ParallelConfig {
    /// The bit-exact single-thread configuration (the default).
    pub fn bit_exact() -> Self {
        Self {
            threads: 1,
            determinism: Determinism::BitExact,
        }
    }

    /// A hogwild configuration with the given worker count.
    pub fn hogwild(threads: usize) -> Self {
        Self {
            threads,
            determinism: Determinism::Hogwild,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.threads == 0 {
            return Err(CoreError::InvalidConfig(
                "parallel trainer needs at least one thread".into(),
            ));
        }
        if self.determinism == Determinism::BitExact && self.threads != 1 {
            return Err(CoreError::InvalidConfig(format!(
                "bit-exact training is single-writer; got {} threads (use Determinism::Hogwild)",
                self.threads
            )));
        }
        Ok(())
    }
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self::bit_exact()
    }
}

/// What one worker hands the coordinator at an epoch barrier.
#[derive(Debug, Clone, Copy, Default)]
struct EpochReport {
    triples: usize,
    skipped: usize,
    info_sum: f64,
    info_count: usize,
    posterior: PosteriorStats,
}

/// The sharded trainer: [`TrainConfig`] + [`ParallelConfig`] bundled with
/// the train entry point.
///
/// ```
/// use bns_core::parallel::{ParallelConfig, ParallelTrainer};
/// use bns_core::{SamplerConfig, TrainConfig};
/// use bns_data::{Dataset, Interactions};
/// use bns_model::MatrixFactorization;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let train = Interactions::from_pairs(2, 4, &[(0, 0), (0, 1), (1, 2)]).unwrap();
/// let test = Interactions::from_pairs(2, 4, &[(1, 3)]).unwrap();
/// let dataset = Dataset::new("doc", train, test).unwrap();
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut model = MatrixFactorization::new(2, 4, 4, 0.1, &mut rng).unwrap();
///
/// let trainer = ParallelTrainer::new(TrainConfig::paper_mf(2, 7), ParallelConfig::hogwild(2)).unwrap();
/// let stats = trainer
///     .train(&mut model, &dataset, &SamplerConfig::Rns, None, &mut bns_core::NoopObserver)
///     .unwrap();
/// assert_eq!(stats.triples, 2 * 3);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParallelTrainer {
    train: TrainConfig,
    parallel: ParallelConfig,
}

impl ParallelTrainer {
    /// Validates and bundles the two configurations.
    pub fn new(train: TrainConfig, parallel: ParallelConfig) -> Result<Self> {
        parallel.validate()?;
        Ok(Self { train, parallel })
    }

    /// The training-loop configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train
    }

    /// The sharding configuration.
    pub fn parallel_config(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Trains `model` on `dataset.train()`, building one sampler per shard
    /// from `sampler_cfg` (`occupations` is needed only by the BNS-4
    /// occupation prior).
    ///
    /// In [`Determinism::BitExact`] mode this *is* the serial engine —
    /// [`crate::train`] with a single sampler — so existing bit-exactness
    /// guarantees carry over unchanged. In [`Determinism::Hogwild`] mode it
    /// runs the sharded lock-free engine described at the module level.
    pub fn train(
        &self,
        model: &mut MatrixFactorization,
        dataset: &Dataset,
        sampler_cfg: &SamplerConfig,
        occupations: Option<&Occupations>,
        observer: &mut dyn TrainObserver,
    ) -> Result<TrainStats> {
        // `new()` validated the parallel config and the fields are private,
        // so no re-validation is needed here.
        match self.parallel.determinism {
            Determinism::BitExact => {
                let mut sampler = build_sampler(sampler_cfg, dataset, occupations)?;
                crate::trainer::train(model, dataset, sampler.as_mut(), &self.train, observer)
            }
            Determinism::Hogwild => {
                self.train_hogwild(model, dataset, sampler_cfg, occupations, observer)
            }
        }
    }

    fn train_hogwild(
        &self,
        model: &mut MatrixFactorization,
        dataset: &Dataset,
        sampler_cfg: &SamplerConfig,
        occupations: Option<&Occupations>,
        observer: &mut dyn TrainObserver,
    ) -> Result<TrainStats> {
        let config = &self.train;
        config.validate()?;
        if model.n_users() != dataset.n_users() || model.n_items() != dataset.n_items() {
            return Err(CoreError::InvalidConfig(format!(
                "model shape ({} users × {} items) does not match dataset ({} × {})",
                model.n_users(),
                model.n_items(),
                dataset.n_users(),
                dataset.n_items()
            )));
        }
        // Validate the sampler configuration once on the coordinator, so
        // workers can unwrap their per-shard builds.
        drop(build_sampler(sampler_cfg, dataset, occupations)?);

        // lint:allow(wall-clock) — wall_seconds is reporting-only output;
        // no training decision reads it.
        let started = std::time::Instant::now();
        let threads = self.parallel.threads;
        let train_set = dataset.train();
        let popularity = dataset.popularity();
        let epochs = config.epochs;

        // User-sharded pair lists: shard w owns every user ≡ w (mod T), so
        // each user row has exactly one writer.
        let mut shards: Vec<Vec<(u32, u32)>> = vec![Vec::new(); threads];
        for (u, i) in train_set.iter_pairs() {
            shards[u as usize % threads].push((u, i));
        }

        let shared = HogwildMf::from_mf(model);
        let barrier = Barrier::new(threads + 1);
        let reports: Vec<Mutex<EpochReport>> = (0..threads)
            .map(|_| Mutex::new(EpochReport::default()))
            .collect();

        let mut stats = TrainStats {
            triples: 0,
            skipped: 0,
            mean_info_per_epoch: Vec::with_capacity(epochs),
            posterior_per_epoch: Vec::with_capacity(epochs),
            wall_seconds: 0.0,
        };

        // A panic anywhere (a worker's sampler, the user's observer) must
        // not leave the other barrier participants waiting forever: every
        // side runs its fallible work under `catch_unwind`, records the
        // first payload, and keeps hitting its barriers. Once poisoned,
        // everyone skips real work and the loops drain fast; the payload
        // is re-thrown after the scope joins, matching the serial engine's
        // panic behavior.
        let poisoned = PoisonFlag::new();
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let poison = |payload: Box<dyn std::any::Any + Send>| {
            poisoned.set();
            panic_payload
                .lock()
                .expect("panic payload lock")
                .get_or_insert(payload);
        };

        std::thread::scope(|scope| {
            for (w, mut pairs) in shards.into_iter().enumerate() {
                let report = &reports[w];
                let shared = &shared;
                let barrier = &barrier;
                let poisoned = &poisoned;
                let poison = &poison;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(worker_seed(config.seed, w));
                    let mut sampler = build_sampler(sampler_cfg, dataset, occupations)
                        .expect("sampler config validated by the coordinator");
                    // Per-worker reusable batch pipeline buffers: the SoA
                    // triple batch, the per-triple info output, and the
                    // hogwild group-update scratch. All reach steady-state
                    // capacity after the first batches.
                    let mut batch_buf = TripleBatch::new();
                    let mut infos: Vec<f32> = Vec::new();
                    let mut scratch = HogwildScratch::default();
                    for epoch in 0..epochs {
                        if !poisoned.is_set() {
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                let lr = config.sgd.lr.at(epoch);
                                sampler.on_epoch_start(epoch);
                                pairs.shuffle(&mut rng);
                                let mut local = EpochReport::default();
                                for chunk in pairs.chunks(config.batch_size) {
                                    // Fill: k negatives per pair against the
                                    // shared tables, gathers batched by user.
                                    {
                                        let ctx = SampleContext {
                                            scorer: shared,
                                            train: train_set,
                                            popularity,
                                            user_scores: &[],
                                            epoch,
                                        };
                                        sampler.sample_batch(
                                            chunk,
                                            config.k_negatives,
                                            &ctx,
                                            &mut rng,
                                            &mut batch_buf,
                                        );
                                    }
                                    local.skipped += chunk.len() - batch_buf.len();
                                    // Update: hogwild writes with batched
                                    // atomic stores per row group.
                                    shared.apply_batch(
                                        &batch_buf,
                                        lr,
                                        config.sgd.reg,
                                        &mut infos,
                                        &mut scratch,
                                    );
                                    for &info in &infos {
                                        local.info_sum += info as f64;
                                    }
                                    local.info_count += infos.len();
                                    local.triples += infos.len();
                                }
                                if let Some(post) = sampler.take_epoch_stats() {
                                    local.posterior = post;
                                }
                                *report.lock().expect("worker report lock") = local;
                            }));
                            if let Err(payload) = outcome {
                                poison(payload);
                            }
                        }
                        // Rendezvous 1: every shard finished the epoch.
                        barrier.wait();
                        // Rendezvous 2: coordinator merged stats and ran
                        // the epoch-end observer on the quiesced model.
                        barrier.wait();
                    }
                });
            }

            for epoch in 0..epochs {
                barrier.wait();
                if !poisoned.is_set() {
                    let mut info_sum = 0.0f64;
                    let mut info_count = 0usize;
                    let mut posterior = PosteriorStats::default();
                    for report in &reports {
                        let r = report.lock().expect("coordinator report lock");
                        stats.triples += r.triples;
                        stats.skipped += r.skipped;
                        info_sum += r.info_sum;
                        info_count += r.info_count;
                        posterior.merge(&r.posterior);
                    }
                    stats.mean_info_per_epoch.push(if info_count == 0 {
                        0.0
                    } else {
                        info_sum / info_count as f64
                    });
                    stats.posterior_per_epoch.push(posterior);
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        observer.on_epoch_end(epoch, &shared as &dyn Scorer);
                    }));
                    if let Err(payload) = outcome {
                        poison(payload);
                    }
                }
                barrier.wait();
            }
        });

        if let Some(payload) = panic_payload.lock().expect("panic payload lock").take() {
            std::panic::resume_unwind(payload);
        }
        *model = shared.to_mf();
        stats.wall_seconds = started.elapsed().as_secs_f64();
        Ok(stats)
    }
}

/// Decorrelates per-shard RNG streams from the run seed: one SplitMix64
/// scramble of `seed + (shard + 1) · golden-ratio`.
fn worker_seed(seed: u64, shard: usize) -> u64 {
    let mut z = seed.wrapping_add((shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::NoopObserver;
    use bns_data::Interactions;

    fn dataset() -> Dataset {
        let mut pairs = Vec::new();
        // 12 users × 20 items, 5 positives each, deterministic layout.
        for u in 0..12u32 {
            for k in 0..5u32 {
                pairs.push((u, (u * 3 + k * 4) % 20));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let train = Interactions::from_pairs(12, 20, &pairs).unwrap();
        let test = Interactions::from_pairs(
            12,
            20,
            &(0..12u32)
                .map(|u| (u, (u * 3 + 2) % 20))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        Dataset::new("par", train, test).unwrap()
    }

    fn mf(seed: u64, d: &Dataset) -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(seed);
        MatrixFactorization::new(d.n_users(), d.n_items(), 8, 0.1, &mut rng).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(ParallelConfig::hogwild(0).validate().is_err());
        assert!(ParallelConfig {
            threads: 4,
            determinism: Determinism::BitExact
        }
        .validate()
        .is_err());
        assert!(ParallelConfig::bit_exact().validate().is_ok());
        assert!(ParallelConfig::hogwild(8).validate().is_ok());
        assert!(ParallelTrainer::new(
            TrainConfig::paper_mf(1, 0),
            ParallelConfig {
                threads: 2,
                determinism: Determinism::BitExact
            }
        )
        .is_err());
    }

    #[test]
    fn bit_exact_matches_serial_engine() {
        let d = dataset();
        let cfg = TrainConfig::paper_mf(4, 11);

        let mut serial_model = mf(3, &d);
        let mut sampler = build_sampler(&SamplerConfig::Rns, &d, None).unwrap();
        let serial_stats = crate::trainer::train(
            &mut serial_model,
            &d,
            sampler.as_mut(),
            &cfg,
            &mut NoopObserver,
        )
        .unwrap();

        let mut par_model = mf(3, &d);
        let trainer = ParallelTrainer::new(cfg, ParallelConfig::bit_exact()).unwrap();
        let par_stats = trainer
            .train(
                &mut par_model,
                &d,
                &SamplerConfig::Rns,
                None,
                &mut NoopObserver,
            )
            .unwrap();

        assert_eq!(serial_stats.triples, par_stats.triples);
        assert_eq!(
            serial_stats.mean_info_per_epoch,
            par_stats.mean_info_per_epoch
        );
        for u in 0..d.n_users() {
            for i in 0..d.n_items() {
                assert_eq!(
                    serial_model.score(u, i).to_bits(),
                    par_model.score(u, i).to_bits()
                );
            }
        }
    }

    #[test]
    fn hogwild_counts_all_triples_and_epochs() {
        let d = dataset();
        let cfg = TrainConfig::paper_mf(3, 5);
        for threads in [1, 2, 4] {
            let mut model = mf(1, &d);
            let trainer = ParallelTrainer::new(cfg, ParallelConfig::hogwild(threads)).unwrap();
            let stats = trainer
                .train(&mut model, &d, &SamplerConfig::Rns, None, &mut NoopObserver)
                .unwrap();
            assert_eq!(stats.triples, 3 * d.train().len(), "threads = {threads}");
            assert_eq!(stats.skipped, 0);
            assert_eq!(stats.mean_info_per_epoch.len(), 3);
            assert_eq!(stats.posterior_per_epoch.len(), 3);
            assert!(model.sq_norm().is_finite());
        }
    }

    #[test]
    fn hogwild_merges_bns_posterior_stats() {
        let d = dataset();
        let cfg = TrainConfig::paper_mf(2, 9);
        let sampler = SamplerConfig::Bns {
            config: crate::BnsConfig::default(),
            prior: crate::PriorKind::Popularity,
        };
        let mut model = mf(2, &d);
        let trainer = ParallelTrainer::new(cfg, ParallelConfig::hogwild(3)).unwrap();
        let stats = trainer
            .train(&mut model, &d, &sampler, None, &mut NoopObserver)
            .unwrap();
        for (epoch, post) in stats.posterior_per_epoch.iter().enumerate() {
            assert_eq!(
                post.draws as usize,
                d.train().len(),
                "epoch {epoch}: every draw must be recorded across shards"
            );
            assert!((0.0..=1.0).contains(&post.mean_unbias()));
            assert!((0.0..=1.0).contains(&post.mean_info()));
        }
    }

    #[test]
    fn hogwild_epoch_observer_runs_on_quiesced_model() {
        struct EpochProbe {
            epochs: Vec<usize>,
            users: u32,
        }
        impl TrainObserver for EpochProbe {
            fn on_triple(&mut self, _: usize, _: u32, _: u32, _: u32, _: f32) {
                panic!("hogwild mode must not deliver per-triple callbacks");
            }
            fn on_epoch_end(&mut self, epoch: usize, model: &dyn Scorer) {
                self.users = model.n_users();
                self.epochs.push(epoch);
            }
        }
        let d = dataset();
        let mut model = mf(4, &d);
        let mut probe = EpochProbe {
            epochs: Vec::new(),
            users: 0,
        };
        let trainer =
            ParallelTrainer::new(TrainConfig::paper_mf(3, 1), ParallelConfig::hogwild(2)).unwrap();
        trainer
            .train(&mut model, &d, &SamplerConfig::Rns, None, &mut probe)
            .unwrap();
        assert_eq!(probe.epochs, vec![0, 1, 2]);
        assert_eq!(probe.users, 12);
    }

    #[test]
    #[should_panic(expected = "probe panic")]
    fn observer_panic_propagates_instead_of_deadlocking() {
        // A panicking epoch-end observer must surface as a panic on the
        // calling thread, not hang the worker barrier rendezvous.
        struct Bomb;
        impl TrainObserver for Bomb {
            fn on_triple(&mut self, _: usize, _: u32, _: u32, _: u32, _: f32) {}
            fn on_epoch_end(&mut self, epoch: usize, _: &dyn Scorer) {
                if epoch == 1 {
                    panic!("probe panic");
                }
            }
        }
        let d = dataset();
        let mut model = mf(8, &d);
        let trainer =
            ParallelTrainer::new(TrainConfig::paper_mf(4, 3), ParallelConfig::hogwild(3)).unwrap();
        let _ = trainer.train(&mut model, &d, &SamplerConfig::Rns, None, &mut Bomb);
    }

    #[test]
    fn more_shards_than_users_is_fine() {
        let d = dataset();
        let mut model = mf(6, &d);
        let trainer =
            ParallelTrainer::new(TrainConfig::paper_mf(1, 2), ParallelConfig::hogwild(16)).unwrap();
        let stats = trainer
            .train(&mut model, &d, &SamplerConfig::Rns, None, &mut NoopObserver)
            .unwrap();
        assert_eq!(stats.triples, d.train().len());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let mut wrong = MatrixFactorization::new(3, 20, 4, 0.1, &mut rng).unwrap();
        let trainer =
            ParallelTrainer::new(TrainConfig::paper_mf(1, 0), ParallelConfig::hogwild(2)).unwrap();
        assert!(trainer
            .train(&mut wrong, &d, &SamplerConfig::Rns, None, &mut NoopObserver)
            .is_err());
    }

    #[test]
    fn worker_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..64).map(|w| worker_seed(42, w)).collect();
        assert_eq!(seeds.len(), 64);
        assert_ne!(worker_seed(1, 0), worker_seed(2, 0));
    }
}
