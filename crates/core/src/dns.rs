//! DNS — Dynamic Negative Sampling (Zhang et al., SIGIR 2013).
//!
//! Draws a small uniform candidate set and returns the candidate the model
//! currently scores **highest** ("local relatively higher ranked", §IV-B1 of
//! the paper). DNS is the strongest baseline in Table II and — as the paper
//! discusses in §IV-D — the exact degenerate case of BNS under a
//! non-informative prior, because `F(x̂)` and ranking position are in
//! one-to-one correspondence.

use crate::sampler::{draw_candidate_set, NegativeSampler, SampleContext, ScoreAccess};
use crate::{CoreError, Result};

/// Max-score-of-candidates sampler.
#[derive(Debug, Clone)]
pub struct Dns {
    m: usize,
    candidates: Vec<u32>,
    scores: Vec<f32>,
}

impl Dns {
    /// Creates DNS with candidate-set size `m` (the paper fixes 5).
    pub fn new(m: usize) -> Result<Self> {
        if m == 0 {
            return Err(CoreError::InvalidConfig(
                "DNS candidate size must be > 0".into(),
            ));
        }
        Ok(Self {
            m,
            candidates: Vec::with_capacity(m),
            scores: Vec::with_capacity(m),
        })
    }

    /// Candidate-set size.
    pub fn m(&self) -> usize {
        self.m
    }
}

impl NegativeSampler for Dns {
    fn name(&self) -> &str {
        "DNS"
    }

    fn sample(
        &mut self,
        u: u32,
        _pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        if !draw_candidate_set(ctx.train, u, self.m, &mut self.candidates, rng) {
            return None;
        }
        // Score only the m candidates (one gather-dot) instead of the whole
        // catalog: O(m·d) per draw where the score_all path was O(n·d).
        self.scores.clear();
        self.scores.resize(self.candidates.len(), 0.0);
        ctx.scorer
            .score_items(u, &self.candidates, &mut self.scores);
        // `max_by` tie semantics of the pre-gather implementation: keep the
        // *last* maximal candidate.
        let mut best = 0usize;
        for (slot, &s) in self.scores.iter().enumerate().skip(1) {
            if s.partial_cmp(&self.scores[best])
                .expect("scores are finite")
                .is_ge()
            {
                best = slot;
            }
        }
        Some(self.candidates[best])
    }

    fn score_access(&self) -> ScoreAccess {
        ScoreAccess::Candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::{Interactions, Popularity};
    use bns_model::scorer::FixedScorer;
    use bns_model::Scorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_candidates() {
        assert!(Dns::new(0).is_err());
        assert_eq!(Dns::new(5).unwrap().m(), 5);
    }

    #[test]
    fn picks_highest_scored_candidate() {
        // Scores strictly increasing with item id; DNS must pick the max id
        // of whatever candidates it draws, so over many draws the selection
        // distribution must first-order dominate uniform.
        let train = Interactions::from_pairs(1, 50, &[(0, 0)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scores: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let scorer = FixedScorer::new(1, 50, scores);
        let mut user_scores = vec![0.0f32; 50];
        scorer.score_all(0, &mut user_scores);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut dns = Dns::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mean = 0.0f64;
        let n = 5_000;
        for _ in 0..n {
            let j = dns.sample(0, 0, &ctx, &mut rng).unwrap();
            assert_ne!(j, 0, "sampled the positive");
            mean += j as f64;
        }
        mean /= n as f64;
        // Max of 5 uniform draws from ~U(1..50): E ≈ 50·5/6 ≈ 41.7 ≫ 25.
        assert!(mean > 38.0, "mean sampled id {mean} not biased high");
    }

    #[test]
    fn single_candidate_reduces_to_uniform() {
        // |M| = 1 is RNS (the paper's Fig. 5 observation).
        let train = Interactions::from_pairs(1, 10, &[(0, 9)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scores: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let scorer = FixedScorer::new(1, 10, scores);
        let mut user_scores = vec![0.0f32; 10];
        scorer.score_all(0, &mut user_scores);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut dns = Dns::new(1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        let n = 30_000;
        for _ in 0..n {
            counts[dns.sample(0, 9, &ctx, &mut rng).unwrap() as usize] += 1;
        }
        for (i, &count) in counts.iter().enumerate().take(9) {
            let f = count as f64 / n as f64;
            assert!((f - 1.0 / 9.0).abs() < 0.02, "item {i} freq {f}");
        }
    }

    #[test]
    fn saturated_user_returns_none() {
        let train = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scorer = FixedScorer::new(1, 2, vec![0.0; 2]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &[0.0, 0.0],
            epoch: 0,
        };
        let mut dns = Dns::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(dns.sample(0, 0, &ctx, &mut rng), None);
    }
}
