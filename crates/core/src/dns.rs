//! DNS — Dynamic Negative Sampling (Zhang et al., SIGIR 2013).
//!
//! Draws a small uniform candidate set and returns the candidate the model
//! currently scores **highest** ("local relatively higher ranked", §IV-B1 of
//! the paper). DNS is the strongest baseline in Table II and — as the paper
//! discusses in §IV-D — the exact degenerate case of BNS under a
//! non-informative prior, because `F(x̂)` and ranking position are in
//! one-to-one correspondence.

use crate::sampler::{
    draw_candidate_append, draw_candidate_set, NegativeSampler, SampleContext, ScoreAccess,
};
use crate::{CoreError, Result};
use bns_model::TripleBatch;

/// Max-score-of-candidates sampler.
#[derive(Debug, Clone)]
pub struct Dns {
    m: usize,
    candidates: Vec<u32>,
    scores: Vec<f32>,
    batch: BatchScratch,
}

/// Reusable buffers of the batched draw (candidate sets of every draw in
/// the batch, their users, and the per-run score output).
#[derive(Debug, Clone, Default)]
struct BatchScratch {
    /// Concatenated candidate sets, `m` per draw, in draw order.
    cands: Vec<u32>,
    /// User of each draw, in draw order.
    draw_users: Vec<u32>,
    /// Scores of the current run's candidates.
    run_scores: Vec<f32>,
}

impl Dns {
    /// Creates DNS with candidate-set size `m` (the paper fixes 5).
    pub fn new(m: usize) -> Result<Self> {
        if m == 0 {
            return Err(CoreError::InvalidConfig(
                "DNS candidate size must be > 0".into(),
            ));
        }
        Ok(Self {
            m,
            candidates: Vec::with_capacity(m),
            scores: Vec::with_capacity(m),
            batch: BatchScratch::default(),
        })
    }

    /// Candidate-set size.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The tie rule of the per-pair path (`max_by` semantics: keep the
    /// *last* maximal candidate), applied to one draw's score slice.
    fn argmax_last(scores: &[f32]) -> usize {
        let mut best = 0usize;
        for (slot, &s) in scores.iter().enumerate().skip(1) {
            if s.partial_cmp(&scores[best])
                .expect("scores are finite")
                .is_ge()
            {
                best = slot;
            }
        }
        best
    }
}

impl NegativeSampler for Dns {
    fn name(&self) -> &str {
        "DNS"
    }

    fn sample(
        &mut self,
        u: u32,
        _pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        if !draw_candidate_set(ctx.train, u, self.m, &mut self.candidates, rng) {
            return None;
        }
        // Score only the m candidates (one gather-dot) instead of the whole
        // catalog: O(m·d) per draw where the score_all path was O(n·d).
        self.scores.clear();
        self.scores.resize(self.candidates.len(), 0.0);
        ctx.scorer
            .score_items(u, &self.candidates, &mut self.scores);
        let best = Self::argmax_last(&self.scores);
        Some(self.candidates[best])
    }

    /// The batched draw. Candidate sets are drawn first for every `(pair,
    /// slot)` in pair order — the exact RNG sequence of the looped per-pair
    /// path, since scoring consumes no randomness — then **consecutive
    /// same-user runs** of draws (every `k > 1` row, and adjacent same-user
    /// pairs) are scored with one `score_items` gather each, straight off
    /// the contiguous candidate buffer (zero-copy: a run's candidate sets
    /// are adjacent by construction). DNS gathers are only `m` dots, so
    /// unlike BNS — whose catalog-sized ECDF pass justifies a full sort-
    /// based by-user grouping — the consecutive grouping captures the
    /// whole win without paying a per-batch sort.
    fn sample_batch(
        &mut self,
        pairs: &[(u32, u32)],
        k: usize,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
        out: &mut TripleBatch,
    ) {
        out.begin_fill(k);
        let m = self.m;
        self.batch.cands.clear();
        self.batch.draw_users.clear();

        // Phase A (all the RNG): candidate sets in pair-major, slot-minor
        // order, exactly as the looped path would consume them — drawn
        // straight into the concatenated buffer, no per-draw copy.
        for &(u, pos) in pairs {
            out.push_row(u, pos);
            let mut ok = true;
            for _ in 0..k {
                if !draw_candidate_append(ctx.train, u, m, &mut self.batch.cands, rng) {
                    ok = false;
                    break;
                }
                self.batch.draw_users.push(u);
            }
            if !ok {
                // Saturated user: drop the row (the first slot already
                // failed before consuming RNG, so nothing was recorded).
                out.pop_row();
            }
        }

        // Phase B: one zero-copy gather per consecutive same-user run,
        // each draw's argmax (per-pair tie rule) resolved while its scores
        // are hot.
        let negs = out.negs_mut();
        let n_draws = self.batch.draw_users.len();
        let mut run = 0usize;
        while run < n_draws {
            let user = self.batch.draw_users[run];
            let mut end = run + 1;
            while end < n_draws && self.batch.draw_users[end] == user {
                end += 1;
            }
            let span = &self.batch.cands[run * m..end * m];
            self.batch.run_scores.clear();
            self.batch.run_scores.resize(span.len(), 0.0);
            ctx.scorer
                .score_items(user, span, &mut self.batch.run_scores);
            for (slot, neg) in negs[run..end].iter_mut().enumerate() {
                let scores = &self.batch.run_scores[slot * m..(slot + 1) * m];
                let best = Self::argmax_last(scores);
                *neg = span[slot * m + best];
            }
            run = end;
        }
    }

    fn score_access(&self) -> ScoreAccess {
        ScoreAccess::Candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::{Interactions, Popularity};
    use bns_model::scorer::FixedScorer;
    use bns_model::Scorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_candidates() {
        assert!(Dns::new(0).is_err());
        assert_eq!(Dns::new(5).unwrap().m(), 5);
    }

    #[test]
    fn picks_highest_scored_candidate() {
        // Scores strictly increasing with item id; DNS must pick the max id
        // of whatever candidates it draws, so over many draws the selection
        // distribution must first-order dominate uniform.
        let train = Interactions::from_pairs(1, 50, &[(0, 0)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scores: Vec<f32> = (0..50).map(|i| i as f32).collect();
        let scorer = FixedScorer::new(1, 50, scores);
        let mut user_scores = vec![0.0f32; 50];
        scorer.score_all(0, &mut user_scores);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut dns = Dns::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mean = 0.0f64;
        let n = 5_000;
        for _ in 0..n {
            let j = dns.sample(0, 0, &ctx, &mut rng).unwrap();
            assert_ne!(j, 0, "sampled the positive");
            mean += j as f64;
        }
        mean /= n as f64;
        // Max of 5 uniform draws from ~U(1..50): E ≈ 50·5/6 ≈ 41.7 ≫ 25.
        assert!(mean > 38.0, "mean sampled id {mean} not biased high");
    }

    #[test]
    fn single_candidate_reduces_to_uniform() {
        // |M| = 1 is RNS (the paper's Fig. 5 observation).
        let train = Interactions::from_pairs(1, 10, &[(0, 9)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scores: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let scorer = FixedScorer::new(1, 10, scores);
        let mut user_scores = vec![0.0f32; 10];
        scorer.score_all(0, &mut user_scores);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &user_scores,
            epoch: 0,
        };
        let mut dns = Dns::new(1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        let n = 30_000;
        for _ in 0..n {
            counts[dns.sample(0, 9, &ctx, &mut rng).unwrap() as usize] += 1;
        }
        for (i, &count) in counts.iter().enumerate().take(9) {
            let f = count as f64 / n as f64;
            assert!((f - 1.0 / 9.0).abs() < 0.02, "item {i} freq {f}");
        }
    }

    #[test]
    fn saturated_user_returns_none() {
        let train = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scorer = FixedScorer::new(1, 2, vec![0.0; 2]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &[0.0, 0.0],
            epoch: 0,
        };
        let mut dns = Dns::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(dns.sample(0, 0, &ctx, &mut rng), None);
    }
}
