//! Contrastive (InfoNCE) training with pluggable negative sampling —
//! the extension the paper's §VI proposes: "Future work can go further to
//! generalize BNS to contrastive-based learning methods."
//!
//! InfoNCE contrasts one positive against `K` negatives per anchor. The
//! negative-selection problem is identical to the pairwise case — unlabeled
//! items may be false negatives — so the same [`NegativeSampler`] policies
//! plug in. The loop runs on the same SoA [`TripleBatch`] pipeline as the
//! BPR trainers: anchors are processed in mini-batches and the sampler
//! fills all `K` slots of every anchor in one `sample_batch` call, which is
//! exactly the multi-negative workload the batched samplers amortize (one
//! candidate gather and one Eq. 16 catalog pass per user per batch instead
//! of per slot). The experiment binary `contrastive` compares RNS/DNS/BNS
//! negatives under this objective.

use crate::sampler::{NegativeSampler, SampleContext};
use crate::{CoreError, Result};
use bns_data::Dataset;
use bns_model::{MatrixFactorization, Scorer, TripleBatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the contrastive trainer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ContrastiveConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Negatives per anchor (the `K` of InfoNCE).
    pub k_negatives: usize,
    /// Anchors per sampling batch: the sampler draws the negatives for
    /// this many anchors in one `sample_batch` call (against the
    /// batch-start encoder state), amortizing per-user score work. `1`
    /// recovers the historical anchor-at-a-time schedule.
    pub batch_size: usize,
    /// Softmax temperature τ.
    pub temperature: f32,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub reg: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ContrastiveConfig {
    fn default() -> Self {
        Self {
            epochs: 40,
            k_negatives: 8,
            batch_size: 128,
            temperature: 0.5,
            lr: 0.05,
            reg: 1e-4,
            seed: 42,
        }
    }
}

impl ContrastiveConfig {
    fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.k_negatives == 0 {
            return Err(CoreError::InvalidConfig(
                "contrastive training requires epochs > 0 and k_negatives > 0".into(),
            ));
        }
        if self.batch_size == 0 {
            return Err(CoreError::InvalidConfig(
                "contrastive batch_size must be > 0".into(),
            ));
        }
        if self.temperature <= 0.0 || !self.temperature.is_finite() {
            return Err(CoreError::InvalidConfig(
                "temperature must be finite and > 0".into(),
            ));
        }
        if self.lr <= 0.0 || !self.lr.is_finite() || self.reg < 0.0 || !self.reg.is_finite() {
            return Err(CoreError::InvalidConfig(
                "lr must be > 0 and reg >= 0".into(),
            ));
        }
        Ok(())
    }
}

/// Per-run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContrastiveStats {
    /// Mean InfoNCE loss per epoch.
    pub loss_per_epoch: Vec<f64>,
    /// Anchors trained.
    pub anchors: usize,
    /// Anchors skipped (user had no negatives).
    pub skipped: usize,
}

/// Trains an MF encoder with the InfoNCE objective, drawing each of the
/// `K` negatives per anchor from `sampler`.
///
/// Duplicate negatives within a slot set are kept (their gradient mass
/// accumulates, as in standard in-batch contrastive training); slots that
/// would collide with the positive are re-drawn by the sampler contract.
pub fn train_contrastive(
    model: &mut MatrixFactorization,
    dataset: &Dataset,
    sampler: &mut dyn NegativeSampler,
    config: &ContrastiveConfig,
) -> Result<ContrastiveStats> {
    config.validate()?;
    if model.n_users() != dataset.n_users() || model.n_items() != dataset.n_items() {
        return Err(CoreError::InvalidConfig(
            "model shape does not match dataset".into(),
        ));
    }
    let train_set = dataset.train();
    let popularity = dataset.popularity();
    let mut pairs: Vec<(u32, u32)> = train_set.iter_pairs().collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Reusable SoA batch: one sample_batch call fills all K slots of every
    // anchor in the chunk.
    let mut batch_buf = TripleBatch::new();

    let mut stats = ContrastiveStats {
        loss_per_epoch: Vec::with_capacity(config.epochs),
        anchors: 0,
        skipped: 0,
    };

    for epoch in 0..config.epochs {
        sampler.on_epoch_start(epoch);
        pairs.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut loss_count = 0usize;
        for chunk in pairs.chunks(config.batch_size) {
            {
                let ctx = SampleContext {
                    scorer: model as &dyn Scorer,
                    train: train_set,
                    popularity,
                    user_scores: &[],
                    epoch,
                };
                sampler.sample_batch(chunk, config.k_negatives, &ctx, &mut rng, &mut batch_buf);
            }
            stats.skipped += chunk.len() - batch_buf.len();
            for (u, pos, negs) in batch_buf.iter() {
                let loss =
                    model.infonce_update(u, pos, negs, config.lr, config.reg, config.temperature);
                loss_sum += loss as f64;
                loss_count += 1;
                stats.anchors += 1;
            }
        }
        stats.loss_per_epoch.push(if loss_count == 0 {
            0.0
        } else {
            loss_sum / loss_count as f64
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rns::Rns;
    use bns_data::Interactions;

    fn tiny_dataset() -> Dataset {
        let train = Interactions::from_pairs(
            4,
            8,
            &[
                (0, 0),
                (0, 1),
                (1, 1),
                (1, 2),
                (2, 4),
                (2, 5),
                (3, 5),
                (3, 6),
            ],
        )
        .unwrap();
        let test = Interactions::from_pairs(4, 8, &[(0, 2), (1, 0), (2, 6), (3, 4)]).unwrap();
        Dataset::new("cl", train, test).unwrap()
    }

    fn mf(d: &Dataset, seed: u64) -> MatrixFactorization {
        let mut rng = StdRng::seed_from_u64(seed);
        MatrixFactorization::new(d.n_users(), d.n_items(), 8, 0.1, &mut rng).unwrap()
    }

    #[test]
    fn config_validation() {
        let d = tiny_dataset();
        let mut m = mf(&d, 0);
        let mut s = Rns;
        for bad in [
            ContrastiveConfig {
                epochs: 0,
                ..Default::default()
            },
            ContrastiveConfig {
                k_negatives: 0,
                ..Default::default()
            },
            ContrastiveConfig {
                temperature: 0.0,
                ..Default::default()
            },
            ContrastiveConfig {
                lr: 0.0,
                ..Default::default()
            },
            ContrastiveConfig {
                reg: -1.0,
                ..Default::default()
            },
        ] {
            assert!(train_contrastive(&mut m, &d, &mut s, &bad).is_err());
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let d = tiny_dataset();
        let mut m = mf(&d, 1);
        let mut s = Rns;
        let cfg = ContrastiveConfig {
            epochs: 30,
            k_negatives: 4,
            ..Default::default()
        };
        let stats = train_contrastive(&mut m, &d, &mut s, &cfg).unwrap();
        assert_eq!(stats.loss_per_epoch.len(), 30);
        assert!(stats.anchors > 0);
        let first = stats.loss_per_epoch[0];
        let last = *stats.loss_per_epoch.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn learns_block_structure() {
        let d = tiny_dataset();
        let mut m = mf(&d, 2);
        let mut s = Rns;
        let cfg = ContrastiveConfig {
            epochs: 60,
            k_negatives: 4,
            ..Default::default()
        };
        train_contrastive(&mut m, &d, &mut s, &cfg).unwrap();
        // Users 0, 1 prefer items 0..4; users 2, 3 prefer 4..8.
        let own: f32 = (0..4).map(|i| m.score(0, i)).sum();
        let other: f32 = (4..8).map(|i| m.score(0, i)).sum();
        assert!(
            own > other,
            "contrastive training failed to separate blocks"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let d = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let mut wrong = MatrixFactorization::new(2, 8, 4, 0.1, &mut rng).unwrap();
        let mut s = Rns;
        assert!(train_contrastive(&mut wrong, &d, &mut s, &ContrastiveConfig::default()).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = tiny_dataset();
        let mut m1 = mf(&d, 4);
        let mut m2 = mf(&d, 4);
        let mut s1 = Rns;
        let mut s2 = Rns;
        let cfg = ContrastiveConfig {
            epochs: 5,
            ..Default::default()
        };
        let a = train_contrastive(&mut m1, &d, &mut s1, &cfg).unwrap();
        let b = train_contrastive(&mut m2, &d, &mut s2, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(m1.score(0, 0), m2.score(0, 0));
    }
}
