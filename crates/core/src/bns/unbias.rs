//! The `unbias(·)` negative-signal measure — Eq. (15) of the paper.
//!
//! For an un-interacted item `l` with empirical score cdf value `F = F(x̂ₗ)`
//! and prior false-negative probability `P = P_fn(l)`:
//!
//! ```text
//!              (1 − F)(1 − P)
//! unbias(l) = ─────────────────────────── ∈ [0, 1]
//!              1 − F − P + 2·F·P
//! ```
//!
//! The denominator equals `(1−F)(1−P) + F·P` — the sum of the unnormalized
//! posteriors of "true negative" and "false negative" — so `unbias` is the
//! normalized posterior probability of `l` being a true negative, with the
//! score density `f(x̂ₗ)` cancelled by the fraction (which is what makes the
//! measure model-agnostic). Lemma 0.1 of the paper: it is an unbiased
//! estimator of `P(sgn(l) = −1)`.

/// Computes `unbias(F, P_fn)` (Eq. 15). Inputs are clamped to `[0, 1]`.
///
/// At the two degenerate corners `(F, P) = (1, 0)` and `(0, 1)` both
/// posterior masses vanish and the measure is undefined; `0.5` (maximum
/// uncertainty) is returned there.
pub fn unbias(f: f64, p_fn: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    let p = p_fn.clamp(0.0, 1.0);
    let tn_mass = (1.0 - f) * (1.0 - p);
    let fn_mass = f * p;
    let den = tn_mass + fn_mass;
    if den <= f64::EPSILON {
        return 0.5;
    }
    tn_mass / den
}

/// The paper's explicit denominator form `1 − F − P + 2FP`, kept as a
/// cross-check that the factored implementation matches Eq. (15) exactly.
#[doc(hidden)]
pub fn unbias_paper_form(f: f64, p_fn: f64) -> f64 {
    let num = (1.0 - f) * (1.0 - p_fn);
    let den = 1.0 - f - p_fn + 2.0 * f * p_fn;
    if den.abs() <= f64::EPSILON {
        return 0.5;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_paper_denominator_form() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..2_000 {
            let f: f64 = rng.random_range(0.01..0.99);
            let p: f64 = rng.random_range(0.01..0.99);
            assert!((unbias(f, p) - unbias_paper_form(f, p)).abs() < 1e-12);
        }
    }

    #[test]
    fn stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let f: f64 = rng.random_range(0.0..=1.0);
            let p: f64 = rng.random_range(0.0..=1.0);
            let u = unbias(f, p);
            assert!((0.0..=1.0).contains(&u), "unbias({f}, {p}) = {u}");
        }
    }

    #[test]
    fn decreasing_in_f_and_p() {
        // Fig. 3's monotonicity: larger F (higher rank) or larger prior
        // P_fn both lower the true-negative posterior.
        for &p in &[0.1, 0.3, 0.7] {
            let mut prev = f64::INFINITY;
            for i in 0..=20 {
                let f = i as f64 / 20.0;
                let u = unbias(f, p);
                assert!(u <= prev + 1e-12, "not decreasing in F at ({f}, {p})");
                prev = u;
            }
        }
        for &f in &[0.1, 0.3, 0.7] {
            let mut prev = f64::INFINITY;
            for i in 0..=20 {
                let p = i as f64 / 20.0;
                let u = unbias(f, p);
                assert!(u <= prev + 1e-12, "not decreasing in P at ({f}, {p})");
                prev = u;
            }
        }
    }

    #[test]
    fn known_values() {
        // Neutral evidence: F = 1/2 with prior 1/2 → posterior 1/2.
        assert!((unbias(0.5, 0.5) - 0.5).abs() < 1e-12);
        // Zero prior on false negative → certainly a true negative.
        assert!((unbias(0.3, 0.0) - 1.0).abs() < 1e-12);
        // Certain false negative prior → zero.
        assert!((unbias(0.3, 1.0)).abs() < 1e-12);
        // Bottom-ranked item (F = 0) → true negative regardless of prior<1.
        assert!((unbias(0.0, 0.7) - 1.0).abs() < 1e-12);
        // Paper's E-value check: E[F] = 1/2 gives E[unbias] = 1 − θ.
        let theta = 0.3;
        assert!((unbias(0.5, theta) - (1.0 - theta)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_corners_return_half() {
        assert_eq!(unbias(1.0, 0.0), 0.5);
        assert_eq!(unbias(0.0, 1.0), 0.5);
    }

    #[test]
    fn clamps_out_of_range_inputs() {
        assert_eq!(unbias(-0.5, 0.5), unbias(0.0, 0.5));
        assert_eq!(unbias(0.5, 1.5), unbias(0.5, 1.0));
    }

    #[test]
    fn lemma_0_1_plug_in_identity() {
        // Lemma 0.1 (Eq. 20–22): the paper pushes the expectation through
        // the fraction, i.e. it evaluates unbias at E[F] = 1/2 and
        // E[P_fn] = θ, which gives exactly 1 − θ. Verify that identity for
        // simulated binomial priors: unbias(mean F, mean P_fn) → 1 − θ.
        let mut rng = StdRng::seed_from_u64(2);
        for &theta in &[0.1f64, 0.25, 0.5, 0.75] {
            let n = 200u32;
            let trials = 20_000;
            let mut f_sum = 0.0f64;
            let mut p_sum = 0.0f64;
            for _ in 0..trials {
                f_sum += rng.random_range(0.0..1.0);
                let mut pop = 0u32;
                for _ in 0..n {
                    if rng.random_range(0.0..1.0) < theta {
                        pop += 1;
                    }
                }
                p_sum += pop as f64 / n as f64;
            }
            let plug_in = unbias(f_sum / trials as f64, p_sum / trials as f64);
            assert!(
                (plug_in - (1.0 - theta)).abs() < 0.02,
                "θ = {theta}: unbias(E F, E P) = {plug_in}, expected {}",
                1.0 - theta
            );
        }
    }

    #[test]
    fn ratio_estimator_jensen_gap_documented() {
        // Reproduction note (recorded in EXPERIMENTS.md): the *Monte-Carlo
        // mean* of unbias(F, P) with F ∼ U(0,1), P fixed at θ differs from
        // 1 − θ because the estimator is a nonlinear ratio (Jensen). The
        // paper's Lemma 0.1 therefore holds in the plug-in sense above, not
        // as strict expectation-unbiasedness. The MC mean must still be a
        // valid probability, decrease in θ, and agree with 1 − θ at the
        // symmetric point θ = 1/2.
        let eval = |theta: f64| {
            let steps = 100_000;
            (0..steps)
                .map(|k| unbias((k as f64 + 0.5) / steps as f64, theta))
                .sum::<f64>()
                / steps as f64
        };
        let (m10, m25, m50, m75) = (eval(0.10), eval(0.25), eval(0.50), eval(0.75));
        assert!(m10 > m25 && m25 > m50 && m50 > m75, "not monotone in θ");
        // Symmetry: unbias(F, 1/2) = 1 − F, so the mean is exactly 1/2.
        assert!((m50 - 0.5).abs() < 1e-3, "θ=0.5 mean {m50}");
        // The Jensen gap at θ = 0.25 is real (≈ −0.07) — pin it so the
        // behaviour is documented, not accidental.
        assert!((m25 - 0.679).abs() < 0.01, "θ=0.25 mean {m25}");
    }
}
