//! BNS — Bayesian Negative Sampling (Algorithm 1 of the paper).
//!
//! For each positive pair `(u, i)`:
//!
//! 1. uniformly draw a candidate set `Mᵤ ⊆ I⁻ᵤ` (paper: |Mᵤ| = 5);
//! 2. for each candidate `l` compute
//!    * `info(l) = 1 − σ(x̂ᵤᵢ − x̂ᵤₗ)` (Eq. 4, the likelihood-side signal),
//!    * `F(x̂ₗ)` — the empirical cdf of `x̂ₗ` among the user's un-interacted
//!      items (Eq. 16, estimated per Glivenko–Cantelli),
//!    * `P_fn(l)` — the prior (Eq. 17 or a Table III/IV variant),
//!    * `unbias(l)` — the normalized posterior of `l` being a true negative
//!      (Eq. 15);
//! 3. select `j = argmin info(l)·[1 − (1+λ)·unbias(l)]` (Eq. 32), or
//!    `argmax unbias(l)` under the posterior criterion of Eq. (35).
//!
//! # The fused draw
//!
//! The paper's Algorithm 1 (and this module's original implementation)
//! computes the full rating vector x̂ᵤ per pair and then runs one `O(|I|)`
//! ECDF scan per candidate — six passes of catalog-sized memory traffic
//! per draw. The implementation here collapses that to **one blocked pass**:
//! candidates are drawn first, `pos` and the candidates are scored with a
//! single [`Scorer::score_items`] gather, and all m ECDF counts of Eq. (16)
//! are produced by [`fused_ecdf_counts`] — each catalog item is scored once
//! (in L1-resident blocks, via the unrolled kernels of
//! `bns_model::kernel`) and compared against all m candidate thresholds
//! in-register. No `n_items`-sized buffer is ever written or re-read. One
//! draw is still linear in the catalog — the paper's complexity claim —
//! but touches each item-embedding row exactly once
//! (`crates/bench/benches/fused_draw.rs` measures the speedup against the
//! pre-fused reference).

pub mod prior;
pub mod risk;
pub mod schedule;
pub mod suffstats;
pub mod unbias;

pub use prior::{NonInformativePrior, OccupationPrior, OraclePrior, PopularityPrior, Prior};
pub use schedule::LambdaSchedule;
pub use suffstats::PosteriorStats;
pub use unbias::unbias;

use crate::sampler::{
    draw_candidate_set, draw_uniform_negative, group_runs_by_user, NegativeSampler, SampleContext,
    ScoreAccess,
};
use crate::{CoreError, Result};
use bns_data::Interactions;
use bns_model::loss::info;
use bns_model::{Scorer, TripleBatch};
use serde::{Deserialize, Serialize};

/// Items scored per block of the fused ECDF pass. 256 scores = 1 KiB —
/// resident in L1 while the m threshold comparisons run over it.
const ECDF_BLOCK: usize = 256;

/// Reusable scratch for [`fused_ecdf_counts`] (the block of item ids being
/// scored and their scores). Steady-state allocation-free: capacity is
/// bounded by `ECDF_BLOCK` (256) after the first pass.
#[derive(Debug, Default)]
pub struct EcdfScratch {
    ids: Vec<u32>,
    scores: Vec<f32>,
}

impl EcdfScratch {
    /// Scores the pending block and folds it into the threshold counters.
    fn flush(&mut self, scorer: &dyn Scorer, u: u32, thresholds: &[f32], counts: &mut [u32]) {
        if self.ids.is_empty() {
            return;
        }
        self.scores.clear();
        self.scores.resize(self.ids.len(), 0.0);
        scorer.score_items(u, &self.ids, &mut self.scores);
        // Block scores stay in L1; each threshold streams over them with a
        // branchless compare-accumulate.
        for (count, &t) in counts.iter_mut().zip(thresholds) {
            let mut c = 0u32;
            for &s in &self.scores {
                c += u32::from(s <= t);
            }
            *count += c;
        }
        self.ids.clear();
    }
}

/// All m empirical-cdf counts of Eq. (16) in **one** blocked pass over the
/// catalog.
///
/// Fills `counts[c] = #{scanned items with x̂ᵤᵢ ≤ thresholds[c]}` and
/// returns the number of items scanned (the cdf denominator):
///
/// * [`EcdfStrategy::Exact`] scans exactly the user's un-interacted items
///   `I⁻ᵤ` (training positives are skipped during the walk), returning
///   `|I⁻ᵤ|` — the exact Eq. (16) numerators and denominator.
/// * [`EcdfStrategy::Subsample`] scans a fixed-stride subsample of the
///   whole catalog (positives included, as in the original subsampled
///   scan — the DKW error dominates the positive contamination) and
///   returns the subsample size.
///
/// Items are scored through [`Scorer::score_items`] in `ECDF_BLOCK`-sized (256-item)
/// blocks and compared against all thresholds while the block is hot, so
/// no catalog-sized buffer exists anywhere. Scores are bitwise identical
/// to `score`/`score_all` (the kernel contract), which keeps these counts
/// exactly equal to m independent scans of a precomputed rating vector —
/// property-tested in `tests/proptests.rs`.
///
/// # Panics
///
/// Panics on `EcdfStrategy::Subsample(0)` — a zero-size subsample has no
/// meaning (`BnsConfig` validation rejects it before a sampler is built;
/// direct callers of this standalone entry point get the same contract).
pub fn fused_ecdf_counts(
    strategy: EcdfStrategy,
    scorer: &dyn Scorer,
    train: &Interactions,
    u: u32,
    thresholds: &[f32],
    counts: &mut Vec<u32>,
    scratch: &mut EcdfScratch,
) -> usize {
    counts.clear();
    counts.resize(thresholds.len(), 0);
    scratch.ids.clear();
    let n_items = train.n_items();
    let exact = match strategy {
        EcdfStrategy::Exact => true,
        // A subsample at least as large as the catalog is the exact scan.
        EcdfStrategy::Subsample(k) => k >= n_items as usize,
    };
    let mut scanned = 0usize;
    if exact {
        let positives = train.items_of(u);
        let mut pos_idx = 0usize;
        for i in 0..n_items {
            if pos_idx < positives.len() && positives[pos_idx] == i {
                pos_idx += 1;
                continue;
            }
            scratch.ids.push(i);
            scanned += 1;
            if scratch.ids.len() == ECDF_BLOCK {
                scratch.flush(scorer, u, thresholds, counts);
            }
        }
    } else {
        let EcdfStrategy::Subsample(k) = strategy else {
            unreachable!("non-exact strategy is Subsample");
        };
        // Fixed-stride subsample: deterministic, cache-friendly and
        // unbiased for exchangeable score layouts.
        assert!(k > 0, "ECDF subsample size must be > 0");
        let stride = (n_items as usize).div_ceil(k) as u32;
        let mut i = 0u32;
        while i < n_items {
            scratch.ids.push(i);
            scanned += 1;
            if scratch.ids.len() == ECDF_BLOCK {
                scratch.flush(scorer, u, thresholds, counts);
            }
            i += stride;
        }
    }
    scratch.flush(scorer, u, thresholds, counts);
    scanned
}

/// Which selection rule to apply over the candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Criterion {
    /// Eq. (32): minimize the conditional sampling risk (the full BNS rule,
    /// balancing informativeness and unbiasedness).
    MinRisk,
    /// Eq. (35): maximize the posterior `unbias(l)` (pure bias avoidance —
    /// used in Fig. 4's sampling-quality study).
    PosteriorMax,
    /// Exploration–exploitation mix (the paper's §VI future-work remark):
    /// with probability `epsilon` pick the *most informative* candidate
    /// (explore hard negatives regardless of bias), otherwise apply the
    /// Eq. (32) min-risk rule (exploit). `epsilon = 0` is `MinRisk`.
    ExploreExploit {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
}

/// How to estimate the likelihood term `F(x̂ₗ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EcdfStrategy {
    /// Exact Eq. (16): scan all of the user's un-interacted item scores.
    Exact,
    /// Scan a fixed-stride subsample of about this many items; justified by
    /// the Glivenko–Cantelli/DKW bound the paper itself invokes. This is a
    /// performance knob for very large catalogs (ablated in the benches).
    Subsample(usize),
}

/// Descriptor of how to construct the prior (serializable; resolved against
/// a dataset by `factory::build_sampler`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PriorKind {
    /// Eq. (17) interaction-ratio prior (standard BNS).
    Popularity,
    /// BNS-3 uniform prior `1/n_items`.
    NonInformative,
    /// BNS-4 occupation-enhanced prior.
    Occupation,
    /// Table IV oracle prior with the given probabilities for true false
    /// negatives / true negatives.
    Oracle {
        /// `P_fn` assigned to genuine false negatives (paper: 0.64).
        p_if_fn: f64,
        /// `P_fn` assigned to genuine true negatives (paper: 0.04).
        p_if_tn: f64,
    },
}

/// BNS hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BnsConfig {
    /// Candidate-set size |Mᵤ| (paper default 5). `usize::MAX` means "all
    /// negatives" — the asymptotically optimal sampler h* of Table IV.
    pub m: usize,
    /// λ schedule (paper default: constant 5; BNS-1 uses the warm start).
    pub lambda: LambdaSchedule,
    /// Selection rule.
    pub criterion: Criterion,
    /// BNS-2: epochs of plain uniform sampling before the Bayesian rule
    /// kicks in (warm-starts the sample information x̂).
    pub warmup_epochs: usize,
    /// Likelihood estimation strategy.
    pub ecdf: EcdfStrategy,
    /// Taylor-expansion order of the sampling-loss estimate (the paper's
    /// §VI notes the first-order Eq. 30 "has much room for improvement").
    pub risk_order: risk::RiskOrder,
}

impl Default for BnsConfig {
    fn default() -> Self {
        Self {
            m: 5,
            lambda: LambdaSchedule::paper_default(),
            criterion: Criterion::MinRisk,
            warmup_epochs: 0,
            ecdf: EcdfStrategy::Exact,
            risk_order: risk::RiskOrder::First,
        }
    }
}

impl BnsConfig {
    fn validate(&self) -> Result<()> {
        if self.m == 0 {
            return Err(CoreError::InvalidConfig(
                "BNS candidate size must be > 0".into(),
            ));
        }
        if !self.lambda.is_valid() {
            return Err(CoreError::InvalidConfig("invalid λ schedule".into()));
        }
        if let EcdfStrategy::Subsample(0) = self.ecdf {
            return Err(CoreError::InvalidConfig(
                "ECDF subsample size must be > 0".into(),
            ));
        }
        if let Criterion::ExploreExploit { epsilon } = self.criterion {
            if !(0.0..=1.0).contains(&epsilon) || !epsilon.is_finite() {
                return Err(CoreError::InvalidConfig(
                    "exploration epsilon must be in [0, 1]".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Per-candidate evaluation record (exposed for the experiment harness and
/// tests; Fig. 3 plots `unbias`, Fig. 4's risk analysis uses the rest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateSignal {
    /// The candidate item.
    pub item: u32,
    /// `info(l)` — Eq. (4).
    pub info: f64,
    /// `F(x̂ₗ)` — Eq. (16).
    pub f_hat: f64,
    /// Prior `P_fn(l)`.
    pub p_fn: f64,
    /// Posterior `unbias(l)` — Eq. (15).
    pub unbias: f64,
    /// Selection value `info·[1 − (1+λ)·unbias]` — Eq. (32).
    pub risk: f64,
}

/// Which signal drives the selection over a candidate set, and in which
/// direction (resolved from [`Criterion`] per draw — the ExploreExploit
/// coin is flipped at draw time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    MinRisk,
    MaxUnbias,
    MaxInfo,
}

/// Reusable buffers of the batched BNS draw: per-draw candidate records,
/// their gathered scores and fused Eq. 16 counts, and the by-user grouping
/// of the batch. Steady-state allocation-free once capacities are reached.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Concatenated candidate sets in draw order.
    cands: Vec<u32>,
    /// Scores aligned with `cands`.
    cand_scores: Vec<f32>,
    /// Eq. 16 counts aligned with `cands`.
    ecdf: Vec<u32>,
    /// Per-draw records (user, positive, candidate range, selection rule,
    /// catalog-scan size, positive score).
    draw_users: Vec<u32>,
    draw_pos: Vec<u32>,
    draw_start: Vec<u32>,
    draw_len: Vec<u32>,
    draw_rule: Vec<Rule>,
    draw_scanned: Vec<u32>,
    draw_pos_score: Vec<f32>,
    /// Draw indices grouped by user.
    order: Vec<u32>,
    /// Per-run gather inputs/outputs and fused-pass thresholds.
    run_ids: Vec<u32>,
    run_scores: Vec<f32>,
    run_thresholds: Vec<f32>,
    run_counts: Vec<u32>,
}

/// The Bayesian negative sampler.
pub struct BnsSampler {
    config: BnsConfig,
    prior: Box<dyn Prior>,
    lambda_now: f64,
    epoch: usize,
    candidates: Vec<u32>,
    display_name: String,
    epoch_stats: PosteriorStats,
    /// `[pos, candidates…]` of the current draw (one gather-dot input).
    gather_ids: Vec<u32>,
    /// Scores matching `gather_ids`.
    gather_scores: Vec<f32>,
    /// Per-candidate ECDF counts from the fused pass.
    ecdf_counts: Vec<u32>,
    /// Block scratch of the fused pass.
    ecdf_scratch: EcdfScratch,
    /// Batched-draw buffers.
    batch: BatchScratch,
}

impl BnsSampler {
    /// Creates a BNS sampler with an explicit prior object.
    pub fn new(config: BnsConfig, prior: Box<dyn Prior>) -> Result<Self> {
        config.validate()?;
        let display_name = format!("BNS[{}]", prior.name());
        Ok(Self {
            lambda_now: config.lambda.at(0),
            config,
            prior,
            epoch: 0,
            candidates: Vec::new(),
            display_name,
            epoch_stats: PosteriorStats::default(),
            gather_ids: Vec::new(),
            gather_scores: Vec::new(),
            ecdf_counts: Vec::new(),
            ecdf_scratch: EcdfScratch::default(),
            batch: BatchScratch::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &BnsConfig {
        &self.config
    }

    /// λ at the current epoch.
    pub fn lambda_now(&self) -> f64 {
        self.lambda_now
    }

    /// Empirical cdf value of `x` among user `u`'s un-interacted items
    /// (Eq. 16), via a one-threshold [`fused_ecdf_counts`] pass. Diagnostic
    /// path (allocates local scratch); the sampling hot path batches all m
    /// thresholds into a single pass instead.
    fn likelihood_f(&self, u: u32, x: f32, ctx: &SampleContext<'_>) -> f64 {
        let mut counts = Vec::new();
        let mut scratch = EcdfScratch::default();
        let scanned = fused_ecdf_counts(
            self.config.ecdf,
            ctx.scorer,
            ctx.train,
            u,
            &[x],
            &mut counts,
            &mut scratch,
        );
        if scanned == 0 {
            return 0.5;
        }
        counts[0] as f64 / scanned as f64
    }

    /// Evaluates the full signal vector for one candidate (used by the
    /// harness to reproduce Fig. 3/4 and by the tests below).
    ///
    /// Scores come from [`Scorer::score_items`] — bitwise identical to the
    /// fused sampling path, so brute-force argmins over this method agree
    /// with [`NegativeSampler::sample`] exactly.
    pub fn evaluate_candidate(
        &self,
        u: u32,
        pos: u32,
        item: u32,
        ctx: &SampleContext<'_>,
    ) -> CandidateSignal {
        let mut pair = [0.0f32; 2];
        ctx.scorer.score_items(u, &[pos, item], &mut pair);
        let info = info(pair[0], pair[1]) as f64;
        let f_hat = self.likelihood_f(u, pair[1], ctx);
        let p_fn = self.prior.p_fn(u, item);
        let unb = unbias(f_hat, p_fn);
        let risk =
            risk::selection_value_ordered(info, unb, self.lambda_now, self.config.risk_order);
        CandidateSignal {
            item,
            info,
            f_hat,
            p_fn,
            unbias: unb,
            risk,
        }
    }

    /// Resolves the per-draw selection rule, flipping the
    /// exploration coin (from the shared RNG, for reproducibility) when the
    /// criterion is [`Criterion::ExploreExploit`].
    fn resolve_rule(criterion: Criterion, rng: &mut dyn rand::RngCore) -> Rule {
        match criterion {
            Criterion::MinRisk => Rule::MinRisk,
            Criterion::PosteriorMax => Rule::MaxUnbias,
            Criterion::ExploreExploit { epsilon } => {
                let coin: f64 = rand::Rng::random_range(rng, 0.0..1.0);
                if coin < epsilon {
                    Rule::MaxInfo
                } else {
                    Rule::MinRisk
                }
            }
        }
    }

    /// Applies `rule` over one draw's candidate set given its gathered
    /// scores and fused Eq. 16 counts — the **one** copy of the signal
    /// evaluation and tie-breaking (`min_by`/`max_by` semantics: keep the
    /// *first* minimal element, the *last* maximal one), shared verbatim by
    /// the per-pair and batched paths so they cannot drift.
    #[allow(clippy::too_many_arguments)] // the flat per-draw signal inputs
    fn select_over_candidates(
        prior: &dyn Prior,
        lambda_now: f64,
        risk_order: risk::RiskOrder,
        rule: Rule,
        u: u32,
        candidates: &[u32],
        cand_scores: &[f32],
        score_pos: f32,
        ecdf_counts: &[u32],
        scanned: usize,
    ) -> Option<CandidateSignal> {
        let keep_min = |a: f64, b: f64| a.partial_cmp(&b).expect("finite signal").is_lt();
        let keep_max = |a: f64, b: f64| a.partial_cmp(&b).expect("finite signal").is_ge();
        let mut best: Option<CandidateSignal> = None;
        for (slot, &item) in candidates.iter().enumerate() {
            let score_neg = cand_scores[slot];
            let info = info(score_pos, score_neg) as f64;
            let f_hat = if scanned == 0 {
                0.5
            } else {
                ecdf_counts[slot] as f64 / scanned as f64
            };
            let p_fn = prior.p_fn(u, item);
            let unb = unbias(f_hat, p_fn);
            let risk = risk::selection_value_ordered(info, unb, lambda_now, risk_order);
            let signal = CandidateSignal {
                item,
                info,
                f_hat,
                p_fn,
                unbias: unb,
                risk,
            };
            let replace = match &best {
                None => true,
                Some(b) => match rule {
                    Rule::MinRisk => keep_min(signal.risk, b.risk),
                    Rule::MaxUnbias => keep_max(signal.unbias, b.unbias),
                    Rule::MaxInfo => keep_max(signal.info, b.info),
                },
            };
            if replace {
                best = Some(signal);
            }
        }
        best
    }

    /// Fills `self.candidates` with the candidate set: either `m` uniform
    /// negatives, or — when `m` exceeds the user's negative count — every
    /// negative (the optimal sampler h*). Returns false if no negatives.
    fn fill_candidates(
        &mut self,
        u: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> bool {
        fill_candidate_set(&mut self.candidates, self.config.m, u, ctx, rng)
    }
}

/// Fills `out` with `u`'s candidate set: either `m` uniform negatives, or —
/// when `m` exceeds the user's negative count — every negative (the optimal
/// sampler h*). Returns false if the user has no negatives (consuming no
/// RNG in that case). A free function over the buffer so the per-pair and
/// batched paths share the **one** candidate-construction implementation.
fn fill_candidate_set(
    out: &mut Vec<u32>,
    m: usize,
    u: u32,
    ctx: &SampleContext<'_>,
    rng: &mut dyn rand::RngCore,
) -> bool {
    let n_neg = ctx.train.n_negatives(u);
    if n_neg == 0 {
        return false;
    }
    if m >= n_neg {
        // Exhaustive candidate set = all un-interacted items.
        out.clear();
        out.reserve(n_neg);
        let positives = ctx.train.items_of(u);
        let mut pos_idx = 0usize;
        for i in 0..ctx.n_items() {
            if pos_idx < positives.len() && positives[pos_idx] == i {
                pos_idx += 1;
                continue;
            }
            out.push(i);
        }
        true
    } else {
        draw_candidate_set(ctx.train, u, m, out, rng)
    }
}

impl NegativeSampler for BnsSampler {
    fn name(&self) -> &str {
        &self.display_name
    }

    fn sample(
        &mut self,
        u: u32,
        pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        // BNS-2 warm start: plain RNS while the score function is unreliable.
        if self.epoch < self.config.warmup_epochs {
            return draw_uniform_negative(ctx.train, u, rng);
        }
        if !self.fill_candidates(u, ctx, rng) {
            return None;
        }

        // Score pos + candidates in one gather-dot, then produce all m
        // ECDF counts in one blocked pass over the catalog — the fused
        // draw described at the module level.
        self.gather_ids.clear();
        self.gather_ids.push(pos);
        self.gather_ids.extend_from_slice(&self.candidates);
        self.gather_scores.clear();
        self.gather_scores.resize(self.gather_ids.len(), 0.0);
        ctx.scorer
            .score_items(u, &self.gather_ids, &mut self.gather_scores);
        let score_pos = self.gather_scores[0];
        let cand_scores = &self.gather_scores[1..];
        let scanned = fused_ecdf_counts(
            self.config.ecdf,
            ctx.scorer,
            ctx.train,
            u,
            cand_scores,
            &mut self.ecdf_counts,
            &mut self.ecdf_scratch,
        );

        let rule = Self::resolve_rule(self.config.criterion, rng);
        let best = Self::select_over_candidates(
            self.prior.as_ref(),
            self.lambda_now,
            self.config.risk_order,
            rule,
            u,
            &self.candidates,
            cand_scores,
            score_pos,
            &self.ecdf_counts,
            scanned,
        );

        if let Some(signal) = &best {
            self.epoch_stats.record(signal);
        }
        best.map(|s| s.item)
    }

    /// The batched fused draw. Phase 1 consumes **all** the randomness in
    /// pair order (candidate sets, then the per-draw exploration coin —
    /// the exact RNG sequence of the looped per-pair path, since scoring
    /// consumes none). Phase 2 groups the batch by user: `pos` + the
    /// candidates of *all* of a user's draws go through **one**
    /// `score_items` gather, and all their Eq. (16) thresholds through
    /// **one** blocked [`fused_ecdf_counts`] catalog pass (reusing
    /// [`EcdfScratch`]), so same-user draws amortize the linear-in-catalog
    /// cost that dominates a BNS draw. Phase 3 applies the Eq. (32)/(35)
    /// selection per draw with the shared tie rules and records the
    /// posterior statistics in draw order.
    fn sample_batch(
        &mut self,
        pairs: &[(u32, u32)],
        k: usize,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
        out: &mut TripleBatch,
    ) {
        out.begin_fill(k);

        // BNS-2 warm start: plain uniform bulk draws, no scoring at all.
        if self.epoch < self.config.warmup_epochs {
            crate::sampler::fill_rows(pairs, k, out, rng, |u, rng| {
                draw_uniform_negative(ctx.train, u, rng)
            });
            return;
        }

        let b = &mut self.batch;
        b.cands.clear();
        b.draw_users.clear();
        b.draw_pos.clear();
        b.draw_start.clear();
        b.draw_len.clear();
        b.draw_rule.clear();

        // Phase 1 (all the RNG): candidate sets + exploration coins in
        // pair-major, slot-minor order.
        for &(u, pos) in pairs {
            out.push_row(u, pos);
            let mut ok = true;
            for _ in 0..k {
                // The shared candidate construction, into the scratch
                // buffer directly (split borrow: `b` stays live).
                if !fill_candidate_set(&mut self.candidates, self.config.m, u, ctx, rng) {
                    ok = false;
                    break;
                }
                b.draw_users.push(u);
                b.draw_pos.push(pos);
                b.draw_start.push(b.cands.len() as u32);
                b.draw_len.push(self.candidates.len() as u32);
                b.cands.extend_from_slice(&self.candidates);
                b.draw_rule
                    .push(Self::resolve_rule(self.config.criterion, rng));
            }
            if !ok {
                // Saturated user: the first slot failed before any RNG use,
                // so nothing of this pair was recorded.
                out.pop_row();
            }
        }

        // Phase 2 (all the scoring): one gather + one fused Eq. 16 catalog
        // pass per distinct user of the batch.
        group_runs_by_user(&b.draw_users, &mut b.order);
        b.cand_scores.clear();
        b.cand_scores.resize(b.cands.len(), 0.0);
        b.ecdf.clear();
        b.ecdf.resize(b.cands.len(), 0);
        b.draw_scanned.clear();
        b.draw_scanned.resize(b.draw_users.len(), 0);
        b.draw_pos_score.clear();
        b.draw_pos_score.resize(b.draw_users.len(), 0.0);
        let mut run = 0usize;
        while run < b.order.len() {
            let user = b.draw_users[b.order[run] as usize];
            let mut end = run;
            while end < b.order.len() && b.draw_users[b.order[end] as usize] == user {
                end += 1;
            }
            // One gather: [pos, candidates…] of every draw in the run.
            b.run_ids.clear();
            for &d in &b.order[run..end] {
                let d = d as usize;
                let (s, l) = (b.draw_start[d] as usize, b.draw_len[d] as usize);
                b.run_ids.push(b.draw_pos[d]);
                b.run_ids.extend_from_slice(&b.cands[s..s + l]);
            }
            b.run_scores.clear();
            b.run_scores.resize(b.run_ids.len(), 0.0);
            ctx.scorer.score_items(user, &b.run_ids, &mut b.run_scores);
            // Scatter scores and collect the run's Eq. 16 thresholds.
            b.run_thresholds.clear();
            let mut cur = 0usize;
            for &d in &b.order[run..end] {
                let d = d as usize;
                let (s, l) = (b.draw_start[d] as usize, b.draw_len[d] as usize);
                b.draw_pos_score[d] = b.run_scores[cur];
                b.cand_scores[s..s + l].copy_from_slice(&b.run_scores[cur + 1..cur + 1 + l]);
                b.run_thresholds.extend_from_slice(&b.cand_scores[s..s + l]);
                cur += 1 + l;
            }
            // One blocked catalog pass for every threshold of the run.
            let scanned = fused_ecdf_counts(
                self.config.ecdf,
                ctx.scorer,
                ctx.train,
                user,
                &b.run_thresholds,
                &mut b.run_counts,
                &mut self.ecdf_scratch,
            );
            let mut cur = 0usize;
            for &d in &b.order[run..end] {
                let d = d as usize;
                let (s, l) = (b.draw_start[d] as usize, b.draw_len[d] as usize);
                b.ecdf[s..s + l].copy_from_slice(&b.run_counts[cur..cur + l]);
                b.draw_scanned[d] = scanned as u32;
                cur += l;
            }
            run = end;
        }

        // Phase 3: the Eq. (32)/(35) selection per draw, in draw order.
        for (d, slot) in out.negs_mut().iter_mut().enumerate() {
            let (s, l) = (b.draw_start[d] as usize, b.draw_len[d] as usize);
            let best = Self::select_over_candidates(
                self.prior.as_ref(),
                self.lambda_now,
                self.config.risk_order,
                b.draw_rule[d],
                b.draw_users[d],
                &b.cands[s..s + l],
                &b.cand_scores[s..s + l],
                b.draw_pos_score[d],
                &b.ecdf[s..s + l],
                b.draw_scanned[d] as usize,
            );
            let signal = best.expect("non-empty candidate set always selects");
            self.epoch_stats.record(&signal);
            *slot = signal.item;
        }
    }

    fn score_access(&self) -> ScoreAccess {
        // During BNS-2 warmup the draws are uniform and need no scores at
        // all; afterwards the fused draw gathers exactly what it needs.
        if self.epoch < self.config.warmup_epochs {
            ScoreAccess::None
        } else {
            ScoreAccess::Candidates
        }
    }

    fn on_epoch_start(&mut self, epoch: usize) {
        self.epoch = epoch;
        self.lambda_now = self.config.lambda.at(epoch);
    }

    fn take_epoch_stats(&mut self) -> Option<PosteriorStats> {
        Some(std::mem::take(&mut self.epoch_stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::{Interactions, Popularity};
    use bns_model::scorer::FixedScorer;
    use bns_model::Scorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        train: Interactions,
        pop: Popularity,
        scorer: FixedScorer,
        user_scores: Vec<f32>,
    }

    impl Fixture {
        /// 1 user, `n` items; user interacted with item 0; scores ascend
        /// with item id. Item popularity: uniform 1 except item n−1 which is
        /// wildly popular.
        fn new(n: u32) -> Self {
            let mut pairs = vec![(0u32, 0u32)];
            // Give every item a popularity count via phantom users.
            let n_users = 40u32;
            for u in 1..n_users {
                pairs.push((u, u % n));
                // Make the last item very popular.
                pairs.push((u, n - 1));
            }
            let train = Interactions::from_pairs(n_users, n, &pairs).unwrap();
            let pop = Popularity::from_interactions(&train);
            let scorer = FixedScorer::new(n_users, n, {
                let mut all = Vec::with_capacity((n_users * n) as usize);
                for _ in 0..n_users {
                    all.extend((0..n).map(|i| i as f32 * 0.05));
                }
                all
            });
            let mut user_scores = vec![0.0f32; n as usize];
            scorer.score_all(0, &mut user_scores);
            Self {
                train,
                pop,
                scorer,
                user_scores,
            }
        }

        fn ctx(&self) -> SampleContext<'_> {
            SampleContext {
                scorer: &self.scorer,
                train: &self.train,
                popularity: &self.pop,
                user_scores: &self.user_scores,
                epoch: 0,
            }
        }
    }

    fn sampler(config: BnsConfig, fx: &Fixture) -> BnsSampler {
        BnsSampler::new(config, Box::new(PopularityPrior::new(&fx.pop))).unwrap()
    }

    #[test]
    fn config_validation() {
        let fx = Fixture::new(20);
        let bad = BnsConfig {
            m: 0,
            ..BnsConfig::default()
        };
        assert!(BnsSampler::new(bad, Box::new(PopularityPrior::new(&fx.pop))).is_err());
        let bad = BnsConfig {
            lambda: LambdaSchedule::Constant(-1.0),
            ..BnsConfig::default()
        };
        assert!(BnsSampler::new(bad, Box::new(PopularityPrior::new(&fx.pop))).is_err());
        let bad = BnsConfig {
            ecdf: EcdfStrategy::Subsample(0),
            ..BnsConfig::default()
        };
        assert!(BnsSampler::new(bad, Box::new(PopularityPrior::new(&fx.pop))).is_err());
    }

    #[test]
    fn never_samples_positive() {
        let fx = Fixture::new(30);
        let mut s = sampler(BnsConfig::default(), &fx);
        let ctx = fx.ctx();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            let j = s.sample(0, 0, &ctx, &mut rng).unwrap();
            assert!(!fx.train.contains(0, j), "sampled positive {j}");
        }
    }

    #[test]
    fn likelihood_f_is_exact_eq16() {
        let fx = Fixture::new(10);
        let s = sampler(BnsConfig::default(), &fx);
        let ctx = fx.ctx();
        // User 0's only positive is item 0 (score 0.0). Negatives: items
        // 1..9 with scores 0.05·i. F(x̂_5) = #{neg scores ≤ 0.25}/9 = 5/9.
        let f = s.likelihood_f(0, fx.user_scores[5], &ctx);
        assert!((f - 5.0 / 9.0).abs() < 1e-12, "F = {f}");
        // Top item: F = 1.
        let f = s.likelihood_f(0, fx.user_scores[9], &ctx);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subsampled_likelihood_approximates_exact() {
        let fx = Fixture::new(500);
        let exact = sampler(BnsConfig::default(), &fx);
        let sub = sampler(
            BnsConfig {
                ecdf: EcdfStrategy::Subsample(100),
                ..BnsConfig::default()
            },
            &fx,
        );
        let ctx = fx.ctx();
        for &item in &[50u32, 250, 450] {
            let fe = exact.likelihood_f(0, fx.user_scores[item as usize], &ctx);
            let fs = sub.likelihood_f(0, fx.user_scores[item as usize], &ctx);
            assert!((fe - fs).abs() < 0.1, "item {item}: exact {fe} vs sub {fs}");
        }
    }

    #[test]
    fn candidate_signal_fields_are_consistent() {
        let fx = Fixture::new(40);
        let mut s = sampler(BnsConfig::default(), &fx);
        s.on_epoch_start(0);
        let ctx = fx.ctx();
        let sig = s.evaluate_candidate(0, 0, 20, &ctx);
        assert_eq!(sig.item, 20);
        assert!((0.0..=1.0).contains(&sig.info));
        assert!((0.0..=1.0).contains(&sig.f_hat));
        assert!((0.0..=1.0).contains(&sig.p_fn));
        assert!((0.0..=1.0).contains(&sig.unbias));
        assert!((sig.risk - risk::selection_value(sig.info, sig.unbias, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn avoids_high_prior_popular_item_under_posterior_criterion() {
        // Item n−1 is both top-scored (F = 1) and very popular (high prior):
        // the posterior criterion must essentially never choose it, while
        // plain DNS-style max-score always would.
        let fx = Fixture::new(20);
        let cfg = BnsConfig {
            criterion: Criterion::PosteriorMax,
            ..BnsConfig::default()
        };
        let mut s = sampler(cfg, &fx);
        let ctx = fx.ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let mut picked_popular = 0usize;
        for _ in 0..300 {
            if s.sample(0, 0, &ctx, &mut rng).unwrap() == 19 {
                picked_popular += 1;
            }
        }
        assert!(
            picked_popular < 5,
            "picked the popular top item {picked_popular} times"
        );
    }

    #[test]
    fn exhaustive_candidate_set_is_deterministic_optimum() {
        // m = MAX → h*: the argmin over every negative; the same draw must
        // come out every time regardless of RNG.
        let fx = Fixture::new(25);
        let cfg = BnsConfig {
            m: usize::MAX,
            ..BnsConfig::default()
        };
        let mut s = sampler(cfg, &fx);
        s.on_epoch_start(0);
        let ctx = fx.ctx();
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(999);
        let a = s.sample(0, 0, &ctx, &mut rng1).unwrap();
        let b = s.sample(0, 0, &ctx, &mut rng2).unwrap();
        assert_eq!(a, b);
        // And it must match the brute-force argmin.
        let best = (1..25u32)
            .map(|l| s.evaluate_candidate(0, 0, l, &ctx))
            .min_by(|x, y| x.risk.partial_cmp(&y.risk).unwrap())
            .unwrap()
            .item;
        assert_eq!(a, best);
    }

    #[test]
    fn warmup_reduces_to_uniform() {
        let fx = Fixture::new(20);
        let cfg = BnsConfig {
            warmup_epochs: 3,
            ..BnsConfig::default()
        };
        let mut s = sampler(cfg, &fx);
        s.on_epoch_start(0); // inside warmup
        let ctx = fx.ctx();
        let mut rng = StdRng::seed_from_u64(3);
        // During warmup, draws should cover the negative space broadly —
        // including low-scored items that MinRisk at λ=5 would down-weight.
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..400 {
            distinct.insert(s.sample(0, 0, &ctx, &mut rng).unwrap());
        }
        assert!(
            distinct.len() > 15,
            "warmup draws not uniform: {}",
            distinct.len()
        );
        // After warmup ends, the Bayesian rule activates.
        s.on_epoch_start(3);
        assert_eq!(s.lambda_now(), 5.0);
    }

    #[test]
    fn lambda_schedule_advances_with_epochs() {
        let fx = Fixture::new(20);
        let cfg = BnsConfig {
            lambda: LambdaSchedule::paper_warm_start(),
            ..BnsConfig::default()
        };
        let mut s = sampler(cfg, &fx);
        s.on_epoch_start(0);
        assert!((s.lambda_now() - 10.0).abs() < 1e-12);
        s.on_epoch_start(40);
        assert!((s.lambda_now() - 6.0).abs() < 1e-12);
        s.on_epoch_start(100);
        assert!((s.lambda_now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_user_returns_none() {
        let train = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scorer = FixedScorer::new(1, 2, vec![0.0; 2]);
        let mut s =
            BnsSampler::new(BnsConfig::default(), Box::new(PopularityPrior::new(&pop))).unwrap();
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &[0.0, 0.0],
            epoch: 0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(s.sample(0, 0, &ctx, &mut rng), None);
    }

    #[test]
    fn oracle_prior_selects_true_negatives() {
        // With the oracle prior, candidates that are "test positives" must
        // be dodged. Respect the paper's order relation (Eq. 6): a trained
        // model scores false negatives *high*, so mark the top-scored items
        // 11..19 as the test positives.
        let train = Interactions::from_pairs(1, 20, &[(0, 0)]).unwrap();
        let test =
            Interactions::from_pairs(1, 20, &(11..20u32).map(|i| (0, i)).collect::<Vec<_>>())
                .unwrap();
        let pop = Popularity::from_interactions(&train);
        let scores: Vec<f32> = (0..20).map(|i| i as f32 * 0.01).collect();
        let scorer = FixedScorer::new(1, 20, scores.clone());
        let cfg = BnsConfig {
            criterion: Criterion::PosteriorMax,
            ..BnsConfig::default()
        };
        let mut s = BnsSampler::new(cfg, Box::new(OraclePrior::paper(test.clone()))).unwrap();
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &scores,
            epoch: 0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut fn_hits = 0usize;
        let trials = 400;
        for _ in 0..trials {
            let j = s.sample(0, 0, &ctx, &mut rng).unwrap();
            if test.contains(0, j) {
                fn_hits += 1;
            }
        }
        // Random sampling would hit false negatives ~47% of the time
        // (9 of 19 negatives); the oracle-informed posterior nearly never.
        assert!(
            fn_hits < trials / 10,
            "false-negative hits: {fn_hits}/{trials}"
        );
    }
}
