//! Prior probabilities `P_fn(l)` of an item being a false negative.
//!
//! The paper's default is the interaction-ratio prior of Eq. (17); the
//! Table III ablations swap in a non-informative prior (BNS-3) and an
//! occupation-enhanced prior (BNS-4); Table IV's asymptotic study uses an
//! oracle prior built from ground-truth labels.

use bns_data::occupation::OccupationItemCounts;
use bns_data::{Interactions, Occupations, Popularity};

/// A source of prior false-negative probabilities.
pub trait Prior: Send + Sync {
    /// Short display name.
    fn name(&self) -> &str;

    /// `P_fn(l)` for item `l` with respect to user `u`, in `[0, 1]`.
    fn p_fn(&self, u: u32, item: u32) -> f64;
}

/// Eq. (17): `P_fn(l) = popₗ / N` — interactions of `l` over total
/// training interactions, i.e. treating the interaction count as a
/// `Binomial(N, P_fn)` draw.
#[derive(Debug, Clone)]
pub struct PopularityPrior {
    counts: Vec<u32>,
    inv_total: f64,
}

impl PopularityPrior {
    /// Builds from training popularity.
    pub fn new(pop: &Popularity) -> Self {
        let total = pop.total();
        Self {
            counts: pop.counts().to_vec(),
            inv_total: if total == 0 { 0.0 } else { 1.0 / total as f64 },
        }
    }
}

impl Prior for PopularityPrior {
    fn name(&self) -> &str {
        "popularity"
    }

    fn p_fn(&self, _u: u32, item: u32) -> f64 {
        (self.counts[item as usize] as f64 * self.inv_total).clamp(0.0, 1.0)
    }
}

/// BNS-3: a non-informative prior `P_fn(l) = 1/n_items` — "for a single
/// randomized trial, the probability of any item l been interacted is
/// 1/1682" (§IV-C2). Under this prior BNS degenerates to DNS.
#[derive(Debug, Clone, Copy)]
pub struct NonInformativePrior {
    p: f64,
}

impl NonInformativePrior {
    /// Uniform prior over `n_items` items.
    pub fn new(n_items: u32) -> Self {
        Self {
            p: if n_items == 0 {
                0.0
            } else {
                1.0 / n_items as f64
            },
        }
    }
}

impl Prior for NonInformativePrior {
    fn name(&self) -> &str {
        "non-informative"
    }

    fn p_fn(&self, _u: u32, _item: u32) -> f64 {
        self.p
    }
}

/// BNS-4: occupation-enhanced prior
/// `P_fn(l) = (popₗ/N) · (1 + Δoᵤₗ)` where `Δoᵤₗ` measures how much user
/// `u`'s occupation group over-consumes item `l` (§IV-C2).
#[derive(Debug, Clone)]
pub struct OccupationPrior {
    base: PopularityPrior,
    occupations: Occupations,
    counts: OccupationItemCounts,
}

impl OccupationPrior {
    /// Builds from training popularity, occupation labels and the
    /// occupation×item counts derived from **training** interactions.
    pub fn new(pop: &Popularity, train: &Interactions, occupations: Occupations) -> Self {
        let counts = OccupationItemCounts::build(train, &occupations);
        Self {
            base: PopularityPrior::new(pop),
            occupations,
            counts,
        }
    }
}

impl Prior for OccupationPrior {
    fn name(&self) -> &str {
        "occupation"
    }

    fn p_fn(&self, u: u32, item: u32) -> f64 {
        let group = self.occupations.of(u);
        let delta = self.counts.delta(group, item);
        (self.base.p_fn(u, item) * (1.0 + delta)).clamp(0.0, 1.0)
    }
}

/// Table IV's ideal prior: `P_fn = 0.64` when the item truly is a false
/// negative (a held-out test positive), `0.04` otherwise — the paper sets
/// `P_fn(l) = (label(l) − 0.2)²` with labels 1/0.
#[derive(Debug, Clone)]
pub struct OraclePrior {
    test: Interactions,
    p_if_fn: f64,
    p_if_tn: f64,
}

impl OraclePrior {
    /// The paper's exact parameterization (0.64 / 0.04).
    pub fn paper(test: Interactions) -> Self {
        Self::new(test, 0.64, 0.04)
    }

    /// Custom oracle probabilities.
    pub fn new(test: Interactions, p_if_fn: f64, p_if_tn: f64) -> Self {
        Self {
            test,
            p_if_fn: p_if_fn.clamp(0.0, 1.0),
            p_if_tn: p_if_tn.clamp(0.0, 1.0),
        }
    }
}

impl Prior for OraclePrior {
    fn name(&self) -> &str {
        "oracle"
    }

    fn p_fn(&self, u: u32, item: u32) -> f64 {
        if self.test.contains(u, item) {
            self.p_if_fn
        } else {
            self.p_if_tn
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train() -> Interactions {
        // Item counts: item 0 → 2, item 1 → 1, item 2 → 1, item 3 → 0.
        Interactions::from_pairs(2, 4, &[(0, 0), (0, 1), (1, 0), (1, 2)]).unwrap()
    }

    #[test]
    fn popularity_prior_matches_eq_17() {
        let pop = Popularity::from_interactions(&train());
        let p = PopularityPrior::new(&pop);
        assert!((p.p_fn(0, 0) - 0.5).abs() < 1e-12);
        assert!((p.p_fn(0, 1) - 0.25).abs() < 1e-12);
        assert_eq!(p.p_fn(0, 3), 0.0);
        assert_eq!(p.name(), "popularity");
    }

    #[test]
    fn popularity_prior_empty_training() {
        let p = PopularityPrior::new(&Popularity::from_counts(vec![0, 0]));
        assert_eq!(p.p_fn(0, 0), 0.0);
    }

    #[test]
    fn non_informative_is_uniform() {
        let p = NonInformativePrior::new(1682);
        assert!((p.p_fn(0, 5) - 1.0 / 1682.0).abs() < 1e-15);
        assert_eq!(p.p_fn(1, 5), p.p_fn(0, 1000));
        assert_eq!(NonInformativePrior::new(0).p_fn(0, 0), 0.0);
    }

    #[test]
    fn occupation_prior_shifts_by_group_taste() {
        let t = train();
        let pop = Popularity::from_interactions(&t);
        // User 0 in group 0, user 1 in group 1.
        let occ = Occupations::from_labels(vec![0, 1], 2);
        let p = OccupationPrior::new(&pop, &t, occ);
        // Item 1 consumed only by group 0: Δ(g0) = (1−0.5)/1 = 0.5,
        // Δ(g1) = −0.5 → prior scaled ×1.5 for u0, ×0.5 for u1.
        let base = 0.25;
        assert!((p.p_fn(0, 1) - base * 1.5).abs() < 1e-12);
        assert!((p.p_fn(1, 1) - base * 0.5).abs() < 1e-12);
    }

    #[test]
    fn occupation_prior_clamps_to_unit() {
        // Extreme case: popularity prior already near 1 and Δ positive.
        let t = Interactions::from_pairs(1, 1, &[(0, 0)]).unwrap();
        let pop = Popularity::from_interactions(&t);
        let occ = Occupations::from_labels(vec![0], 1);
        let p = OccupationPrior::new(&pop, &t, occ);
        assert!(p.p_fn(0, 0) <= 1.0);
    }

    #[test]
    fn oracle_prior_uses_test_labels() {
        let test = Interactions::from_pairs(1, 3, &[(0, 1)]).unwrap();
        let p = OraclePrior::paper(test);
        assert_eq!(p.p_fn(0, 1), 0.64);
        assert_eq!(p.p_fn(0, 0), 0.04);
        assert_eq!(p.p_fn(0, 2), 0.04);
        assert_eq!(p.name(), "oracle");
    }

    #[test]
    fn oracle_prior_clamps_custom_values() {
        let test = Interactions::from_pairs(1, 2, &[(0, 0)]).unwrap();
        let p = OraclePrior::new(test, 2.0, -0.5);
        assert_eq!(p.p_fn(0, 0), 1.0);
        assert_eq!(p.p_fn(0, 1), 0.0);
    }
}
