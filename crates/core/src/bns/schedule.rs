//! λ schedules for the Bayesian sampling rule.
//!
//! λ trades the ranking **gain** from sampling a hard true negative against
//! the **risk** of sampling a false negative (Eq. 30–32). The paper uses
//! λ = 5 by default (Fig. 5) and shows in Table III (BNS-1) that the
//! warm-start schedule `λ(epoch) = max(10 − 0.1·epoch, 2)` — aggressive
//! early, conservative late — does slightly better.

use serde::{Deserialize, Serialize};

/// λ as a function of the training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LambdaSchedule {
    /// Fixed λ (paper default: 5).
    Constant(f64),
    /// BNS-1: `λ(e) = max(init − slope·e, floor)`
    /// (paper: init 10, slope 0.1, floor 2).
    WarmStart {
        /// λ at epoch 0.
        init: f64,
        /// Linear decrease per epoch.
        slope: f64,
        /// Lower bound.
        floor: f64,
    },
}

impl LambdaSchedule {
    /// The paper's default constant λ = 5.
    pub fn paper_default() -> Self {
        LambdaSchedule::Constant(5.0)
    }

    /// The paper's BNS-1 warm start: `max(10 − 0.1·epoch, 2)`.
    pub fn paper_warm_start() -> Self {
        LambdaSchedule::WarmStart {
            init: 10.0,
            slope: 0.1,
            floor: 2.0,
        }
    }

    /// λ at a 0-based epoch.
    pub fn at(&self, epoch: usize) -> f64 {
        match *self {
            LambdaSchedule::Constant(l) => l,
            LambdaSchedule::WarmStart { init, slope, floor } => {
                (init - slope * epoch as f64).max(floor)
            }
        }
    }

    /// Whether the schedule's values are finite and non-negative.
    pub fn is_valid(&self) -> bool {
        match *self {
            LambdaSchedule::Constant(l) => l.is_finite() && l >= 0.0,
            LambdaSchedule::WarmStart { init, slope, floor } => {
                init.is_finite()
                    && slope.is_finite()
                    && floor.is_finite()
                    && init >= 0.0
                    && slope >= 0.0
                    && floor >= 0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LambdaSchedule::Constant(5.0);
        assert_eq!(s.at(0), 5.0);
        assert_eq!(s.at(1_000), 5.0);
        assert!(s.is_valid());
    }

    #[test]
    fn warm_start_matches_paper_formula() {
        let s = LambdaSchedule::paper_warm_start();
        assert!((s.at(0) - 10.0).abs() < 1e-12);
        assert!((s.at(10) - 9.0).abs() < 1e-12);
        assert!((s.at(50) - 5.0).abs() < 1e-12);
        // Floors at 2 from epoch 80 on.
        assert!((s.at(80) - 2.0).abs() < 1e-12);
        assert!((s.at(500) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(!LambdaSchedule::Constant(f64::NAN).is_valid());
        assert!(!LambdaSchedule::Constant(-1.0).is_valid());
        assert!(!LambdaSchedule::WarmStart {
            init: 10.0,
            slope: -0.1,
            floor: 2.0
        }
        .is_valid());
        assert!(LambdaSchedule::paper_default().is_valid());
        assert!(LambdaSchedule::paper_warm_start().is_valid());
    }
}
