//! Conditional and empirical sampling risk — Definitions 0.1/0.2 and
//! Eq. (30)–(32) of the paper.
//!
//! Sampling item `l` as the negative of a pair `(u, i)` perturbs the
//! ranking objective by `≈ +info(l)` if `l` is actually a false negative
//! and `≈ −λ·info(l)` if it is a true negative (Eq. 30). Taking the
//! expectation over the posterior label distribution gives the conditional
//! sampling risk (Eq. 31), whose per-candidate minimizer is the paper's
//! optimal sampler (Theorem 0.1).

use serde::{Deserialize, Serialize};

/// Order of the Taylor expansion used to estimate the per-draw sampling
/// loss `ΔL(l|i)` (Eq. 29/30).
///
/// The paper acknowledges in §VI that its first-order estimate "has much
/// room for improvement"; the second-order variant keeps the next Taylor
/// term of `ln σ` around the current score, which replaces the loss
/// magnitude `info` by `½·info·(1 + info)` — damping near-saturated
/// candidates (`info → 1`) less than mid-range ones. This is one of the
/// repo's documented extensions (ablated in the `ablation` binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RiskOrder {
    /// Eq. (30): `ΔL ≈ info`.
    #[default]
    First,
    /// Second-order Taylor: `ΔL ≈ ½·info·(1 + info)` (the `ln σ` curvature
    /// term `−info·(1 − info)` evaluated at unit score decrease).
    Second,
}

/// The estimated magnitude of the sampling loss `|ΔL(l|i)|` for a unit
/// score decrease, at the chosen expansion order.
#[inline]
pub fn sampling_loss(info: f64, order: RiskOrder) -> f64 {
    match order {
        RiskOrder::First => info,
        RiskOrder::Second => 0.5 * info * (1.0 + info),
    }
}

/// Conditional sampling risk (Eq. 31):
/// `R(l|i) = (1 − unbias)·info − λ·unbias·info`.
#[inline]
pub fn conditional_risk(info: f64, unbias: f64, lambda: f64) -> f64 {
    (1.0 - unbias) * info - lambda * unbias * info
}

/// The factored selection form used by the sampler (Eq. 32):
/// `info · [1 − (1 + λ)·unbias]`. Algebraically identical to
/// [`conditional_risk`]; kept separate so tests can pin the equivalence.
#[inline]
pub fn selection_value(info: f64, unbias: f64, lambda: f64) -> f64 {
    info * (1.0 - (1.0 + lambda) * unbias)
}

/// Empirical sampling risk (Definition 0.2): the mean of conditional risks
/// over observed draws, `R(h) = E_i R(l|i)`.
pub fn empirical_risk(risks: &[f64]) -> f64 {
    if risks.is_empty() {
        return 0.0;
    }
    risks.iter().sum::<f64>() / risks.len() as f64
}

/// Eq. (32)'s selection value at a configurable expansion order:
/// `sampling_loss(info) · [1 − (1 + λ)·unbias]`.
#[inline]
pub fn selection_value_ordered(info: f64, unbias: f64, lambda: f64, order: RiskOrder) -> f64 {
    sampling_loss(info, order) * (1.0 - (1.0 + lambda) * unbias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn eq31_equals_eq32() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..2_000 {
            let info: f64 = rng.random_range(0.0..1.0);
            let unbias: f64 = rng.random_range(0.0..1.0);
            let lambda: f64 = rng.random_range(0.0..20.0);
            let a = conditional_risk(info, unbias, lambda);
            let b = selection_value(info, unbias, lambda);
            assert!(
                (a - b).abs() < 1e-12,
                "mismatch at ({info}, {unbias}, {lambda})"
            );
        }
    }

    #[test]
    fn risk_signs() {
        // Certain false negative (unbias 0): risk = +info (harmful).
        assert!((conditional_risk(0.8, 0.0, 5.0) - 0.8).abs() < 1e-12);
        // Certain true negative (unbias 1): risk = −λ·info (gain).
        assert!((conditional_risk(0.8, 1.0, 5.0) + 4.0).abs() < 1e-12);
        // Zero-gradient candidate: no risk either way.
        assert_eq!(conditional_risk(0.0, 0.3, 5.0), 0.0);
    }

    #[test]
    fn lambda_shifts_the_breakeven() {
        // The risk is ≤ 0 iff unbias ≥ 1/(1+λ): larger λ accepts riskier
        // (less certainly-negative) candidates.
        for &lambda in &[0.1, 1.0, 5.0, 15.0] {
            let breakeven = 1.0 / (1.0 + lambda);
            assert!(conditional_risk(0.5, breakeven + 1e-9, lambda) < 0.0);
            assert!(conditional_risk(0.5, breakeven - 1e-9, lambda) > 0.0);
        }
    }

    #[test]
    fn minimizer_prefers_informative_true_negatives() {
        // Among candidates, an informative likely-TN must have lower risk
        // than (a) an uninformative likely-TN and (b) an informative
        // likely-FN.
        let lambda = 5.0;
        let good = conditional_risk(0.9, 0.9, lambda);
        let dull = conditional_risk(0.1, 0.9, lambda);
        let biased = conditional_risk(0.9, 0.1, lambda);
        assert!(good < dull);
        assert!(good < biased);
    }

    #[test]
    fn empirical_risk_averages() {
        assert_eq!(empirical_risk(&[]), 0.0);
        assert!((empirical_risk(&[1.0, -1.0, 0.5, -0.5]) - 0.0).abs() < 1e-12);
        assert!((empirical_risk(&[0.2, 0.4]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn second_order_loss_properties() {
        // Agrees with first order at the extremes and is below in between
        // (the curvature term subtracts ½·info·(1−info) ≥ 0).
        assert_eq!(sampling_loss(0.0, RiskOrder::Second), 0.0);
        assert!((sampling_loss(1.0, RiskOrder::Second) - 1.0).abs() < 1e-12);
        for &i in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let first = sampling_loss(i, RiskOrder::First);
            let second = sampling_loss(i, RiskOrder::Second);
            assert!(second <= first + 1e-12, "second > first at info = {i}");
            assert!(second > 0.0);
            // Explicit formula: first − ½·info·(1−info).
            assert!((second - (first - 0.5 * i * (1.0 - i))).abs() < 1e-12);
        }
        // Monotone in info: ordering of candidates by pure loss magnitude
        // is preserved across orders.
        assert!(sampling_loss(0.8, RiskOrder::Second) > sampling_loss(0.4, RiskOrder::Second));
    }

    #[test]
    fn ordered_selection_value_reduces_to_eq32_at_first_order() {
        for &(i, u, l) in &[(0.5, 0.3, 5.0), (0.9, 0.8, 0.1), (0.2, 0.5, 15.0)] {
            let a = selection_value_ordered(i, u, l, RiskOrder::First);
            let b = selection_value(i, u, l);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn theorem_0_1_greedy_minimizer_is_optimal() {
        // Monte-Carlo version of Theorem 0.1: per-pair argmin of R(l|i)
        // yields empirical risk no larger than any fixed alternative policy.
        let mut rng = StdRng::seed_from_u64(1);
        let lambda = 5.0;
        let mut greedy_total = 0.0f64;
        let mut random_total = 0.0f64;
        let mut hardest_total = 0.0f64;
        let trials = 3_000;
        for _ in 0..trials {
            let candidates: Vec<(f64, f64)> = (0..5)
                .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                .collect();
            let risks: Vec<f64> = candidates
                .iter()
                .map(|&(i, u)| conditional_risk(i, u, lambda))
                .collect();
            greedy_total += risks.iter().cloned().fold(f64::INFINITY, f64::min);
            random_total += risks[0]; // a fixed arbitrary policy
                                      // "hardest": max info policy.
            let hardest = candidates
                .iter()
                .zip(&risks)
                .max_by(|a, b| a.0 .0.partial_cmp(&b.0 .0).unwrap())
                .map(|(_, &r)| r)
                .unwrap();
            hardest_total += hardest;
        }
        assert!(greedy_total <= random_total);
        assert!(greedy_total <= hardest_total);
    }
}
