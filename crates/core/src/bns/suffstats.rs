//! Mergeable sufficient statistics of the Bayesian sampling signals.
//!
//! Each BNS draw evaluates the per-candidate signals of Eq. (4)/(15)–(17)/
//! (32) and selects one negative. [`PosteriorStats`] accumulates the sums
//! needed to recover the epoch means of those signals for the *selected*
//! negatives — the quantities behind the paper's Fig. 4 risk analysis —
//! as plain sums, so per-shard accumulators from a parallel training run
//! can be combined at epoch barriers with [`PosteriorStats::merge`]
//! without any loss of information (they are sufficient statistics of the
//! means).

use serde::{Deserialize, Serialize};

/// Sums of the selected-negative sampling signals over one epoch (or one
/// shard of one epoch). All fields are additive, so sharded accumulators
/// merge exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PosteriorStats {
    /// Number of Bayesian draws recorded (warm-up uniform draws excluded).
    pub draws: u64,
    /// Σ `info(j)` of selected negatives — Eq. (4).
    pub info_sum: f64,
    /// Σ `F(x̂ⱼ)` of selected negatives — Eq. (16).
    pub likelihood_sum: f64,
    /// Σ prior `P_fn(j)` of selected negatives — Eq. (17).
    pub prior_sum: f64,
    /// Σ posterior `unbias(j)` of selected negatives — Eq. (15).
    pub unbias_sum: f64,
    /// Σ selection value `info·[1 − (1+λ)·unbias]` — Eq. (32).
    pub risk_sum: f64,
}

impl PosteriorStats {
    /// Records one selected candidate's signal vector.
    pub fn record(&mut self, signal: &super::CandidateSignal) {
        self.draws += 1;
        self.info_sum += signal.info;
        self.likelihood_sum += signal.f_hat;
        self.prior_sum += signal.p_fn;
        self.unbias_sum += signal.unbias;
        self.risk_sum += signal.risk;
    }

    /// Folds another accumulator into this one (the epoch-barrier merge of
    /// the parallel trainer).
    pub fn merge(&mut self, other: &PosteriorStats) {
        self.draws += other.draws;
        self.info_sum += other.info_sum;
        self.likelihood_sum += other.likelihood_sum;
        self.prior_sum += other.prior_sum;
        self.unbias_sum += other.unbias_sum;
        self.risk_sum += other.risk_sum;
    }

    /// Mean posterior `unbias` of the epoch's selected negatives, or 0.0
    /// when nothing was recorded.
    pub fn mean_unbias(&self) -> f64 {
        self.mean(self.unbias_sum)
    }

    /// Mean `info` of the epoch's selected negatives (the INF numerator of
    /// Eq. 34 without labels), or 0.0 when nothing was recorded.
    pub fn mean_info(&self) -> f64 {
        self.mean(self.info_sum)
    }

    /// Mean conditional-risk selection value (Eq. 32), or 0.0 when nothing
    /// was recorded. This is the empirical sampling risk of Definition 0.2
    /// restricted to the selected candidates.
    pub fn mean_risk(&self) -> f64 {
        self.mean(self.risk_sum)
    }

    fn mean(&self, sum: f64) -> f64 {
        if self.draws == 0 {
            0.0
        } else {
            sum / self.draws as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::CandidateSignal;
    use super::*;

    fn signal(info: f64, unbias: f64) -> CandidateSignal {
        CandidateSignal {
            item: 0,
            info,
            f_hat: 0.5,
            p_fn: 0.1,
            unbias,
            risk: info * (1.0 - 6.0 * unbias),
        }
    }

    #[test]
    fn empty_stats_have_zero_means() {
        let s = PosteriorStats::default();
        assert_eq!(s.draws, 0);
        assert_eq!(s.mean_unbias(), 0.0);
        assert_eq!(s.mean_info(), 0.0);
        assert_eq!(s.mean_risk(), 0.0);
    }

    #[test]
    fn record_accumulates_means() {
        let mut s = PosteriorStats::default();
        s.record(&signal(0.2, 0.8));
        s.record(&signal(0.6, 0.4));
        assert_eq!(s.draws, 2);
        assert!((s.mean_info() - 0.4).abs() < 1e-12);
        assert!((s.mean_unbias() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        // Sufficiency: recording in two shards then merging must equal
        // recording everything in one accumulator.
        let sig: Vec<CandidateSignal> = (0..10)
            .map(|i| signal(0.05 * i as f64, 1.0 - 0.07 * i as f64))
            .collect();
        let mut whole = PosteriorStats::default();
        for s in &sig {
            whole.record(s);
        }
        let mut shard_a = PosteriorStats::default();
        let mut shard_b = PosteriorStats::default();
        for (i, s) in sig.iter().enumerate() {
            if i % 2 == 0 {
                shard_a.record(s);
            } else {
                shard_b.record(s);
            }
        }
        shard_a.merge(&shard_b);
        assert_eq!(shard_a.draws, whole.draws);
        // Sums agree up to floating-point reassociation.
        for (a, b) in [
            (shard_a.info_sum, whole.info_sum),
            (shard_a.likelihood_sum, whole.likelihood_sum),
            (shard_a.prior_sum, whole.prior_sum),
            (shard_a.unbias_sum, whole.unbias_sum),
            (shard_a.risk_sum, whole.risk_sum),
        ] {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = PosteriorStats::default();
        a.record(&signal(0.3, 0.7));
        let mut b = PosteriorStats::default();
        b.record(&signal(0.9, 0.2));
        b.record(&signal(0.1, 0.5));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
    }
}
