//! Bayesian negative classification — Eq. (11)–(13) of the paper.
//!
//! Classifying an un-interacted item as true or false negative by comparing
//! the two posteriors
//!
//! ```text
//! P(tn | x̂ₗ) ∝ 2 f(x̂ₗ)(1 − F(x̂ₗ)) · P_tn(l)     (Eq. 11)
//! P(fn | x̂ₗ) ∝ 2 F(x̂ₗ) f(x̂ₗ)      · P_fn(l)     (Eq. 12)
//! ```
//!
//! The density `f(x̂ₗ)` is common to both, so the MAP decision (Eq. 13)
//! reduces to comparing `(1 − F)(1 − P_fn)` against `F·P_fn` — equivalently
//! `unbias(l) ≷ 1/2`. Both the reduced form and the full density-weighted
//! form (given an explicit score distribution) are provided.

use crate::bns::unbias::unbias;
use bns_stats::dist::Continuous;

/// The classification outcome for an un-interacted item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegativeClass {
    /// The user truly dislikes the item.
    TrueNegative,
    /// The user would like the item (a latent positive).
    FalseNegative,
}

/// MAP classification from the empirical cdf value and the prior
/// (density-free reduced form of Eq. 13). Ties break toward
/// [`NegativeClass::TrueNegative`], matching the PU-learning convention
/// that unlabeled data is negative absent contrary evidence.
pub fn classify(f_hat: f64, p_fn: f64) -> NegativeClass {
    if unbias(f_hat, p_fn) >= 0.5 {
        NegativeClass::TrueNegative
    } else {
        NegativeClass::FalseNegative
    }
}

/// Unnormalized posterior densities `(P(tn|x), P(fn|x))` of Eq. (11)/(12)
/// for an explicit base score distribution.
pub fn posterior_densities<D: Continuous>(dist: &D, x: f64, p_fn: f64) -> (f64, f64) {
    let f = dist.pdf(x);
    let cdf = dist.cdf(x);
    let p_tn = 1.0 - p_fn;
    (2.0 * f * (1.0 - cdf) * p_tn, 2.0 * cdf * f * p_fn)
}

/// MAP classification using explicit densities (full Eq. 13).
pub fn classify_with_density<D: Continuous>(dist: &D, x: f64, p_fn: f64) -> NegativeClass {
    let (tn, fnn) = posterior_densities(dist, x, p_fn);
    if tn >= fnn {
        NegativeClass::TrueNegative
    } else {
        NegativeClass::FalseNegative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_stats::Normal;

    #[test]
    fn low_rank_low_prior_is_true_negative() {
        assert_eq!(classify(0.1, 0.05), NegativeClass::TrueNegative);
    }

    #[test]
    fn high_rank_high_prior_is_false_negative() {
        assert_eq!(classify(0.95, 0.6), NegativeClass::FalseNegative);
    }

    #[test]
    fn decision_boundary_is_unbias_half() {
        // With a neutral prior the boundary sits exactly at F = 1/2.
        assert_eq!(classify(0.499, 0.5), NegativeClass::TrueNegative);
        assert_eq!(classify(0.501, 0.5), NegativeClass::FalseNegative);
        // Ties → TrueNegative.
        assert_eq!(classify(0.5, 0.5), NegativeClass::TrueNegative);
    }

    #[test]
    fn prior_shifts_the_boundary() {
        // Same F, different priors flip the decision.
        assert_eq!(classify(0.7, 0.1), NegativeClass::TrueNegative);
        assert_eq!(classify(0.7, 0.5), NegativeClass::FalseNegative);
    }

    #[test]
    fn density_form_agrees_with_reduced_form() {
        // For any base distribution, MAP with densities equals MAP with the
        // cdf alone, because f(x) > 0 cancels.
        let dist = Normal::standard();
        for &x in &[-2.0, -0.5, 0.0, 0.5, 2.0] {
            for &p in &[0.05, 0.3, 0.5, 0.8] {
                let full = classify_with_density(&dist, x, p);
                let reduced = classify(dist.cdf(x), p);
                assert_eq!(full, reduced, "disagreement at x={x}, p={p}");
            }
        }
    }

    #[test]
    fn posterior_densities_are_nonnegative_and_scale_with_prior() {
        let dist = Normal::standard();
        let (tn1, fn1) = posterior_densities(&dist, 0.3, 0.2);
        let (tn2, fn2) = posterior_densities(&dist, 0.3, 0.4);
        assert!(tn1 >= 0.0 && fn1 >= 0.0);
        // Larger prior on fn: fn posterior grows, tn posterior shrinks.
        assert!(fn2 > fn1);
        assert!(tn2 < tn1);
    }
}
