//! RNS — Random Negative Sampling (the BPR default).
//!
//! Uniformly samples one un-interacted item. The paper (§II) points out that
//! RNS implicitly sets `sgn(j) = −1` for every draw, i.e. it assumes every
//! un-interacted item is a true negative, which biases training whenever a
//! false negative is drawn.

use crate::sampler::{draw_uniform_negative, NegativeSampler, SampleContext, ScoreAccess};
use bns_model::TripleBatch;

/// Uniform negative sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rns;

impl NegativeSampler for Rns {
    fn name(&self) -> &str {
        "RNS"
    }

    fn sample(
        &mut self,
        u: u32,
        _pos: u32,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
    ) -> Option<u32> {
        draw_uniform_negative(ctx.train, u, rng)
    }

    /// Bulk draw: the whole batch is one tight rejection-sampling loop with
    /// no per-pair trait dispatch or context plumbing. Draw-for-draw
    /// identical to looping [`NegativeSampler::sample`].
    fn sample_batch(
        &mut self,
        pairs: &[(u32, u32)],
        k: usize,
        ctx: &SampleContext<'_>,
        rng: &mut dyn rand::RngCore,
        out: &mut TripleBatch,
    ) {
        crate::sampler::fill_rows(pairs, k, out, rng, |u, rng| {
            draw_uniform_negative(ctx.train, u, rng)
        });
    }

    fn score_access(&self) -> ScoreAccess {
        ScoreAccess::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::{Interactions, Popularity};
    use bns_model::scorer::FixedScorer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_only_negatives() {
        let train = Interactions::from_pairs(1, 5, &[(0, 0), (0, 2)]).unwrap();
        let pop = Popularity::from_interactions(&train);
        let scorer = FixedScorer::new(1, 5, vec![0.0; 5]);
        let ctx = SampleContext {
            scorer: &scorer,
            train: &train,
            popularity: &pop,
            user_scores: &[],
            epoch: 0,
        };
        let mut rns = Rns;
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..500 {
            let j = rns.sample(0, 0, &ctx, &mut rng).unwrap();
            assert!(matches!(j, 1 | 3 | 4));
        }
        assert_eq!(rns.name(), "RNS");
        assert_eq!(rns.score_access(), ScoreAccess::None);
    }
}
