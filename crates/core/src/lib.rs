#![deny(missing_docs)]

//! # bns-core — Bayesian Negative Sampling and baselines
//!
//! The paper's contribution (§III) and everything it is compared against
//! (§IV-A2):
//!
//! * [`sampler`] — the [`NegativeSampler`] trait (per-pair `sample` and
//!   the batched `sample_batch` that fills a [`TripleBatch`] with
//!   `k ≥ 1` negatives per pair), the per-call [`SampleContext`], the
//!   [`ScoreAccess`] cost contract, and the shared uniform
//!   candidate-drawing helper.
//! * [`rns`] — Random Negative Sampling (uniform; BPR's default).
//! * [`pns`] — Popularity-biased Negative Sampling (`∝ r^0.75`).
//! * [`aobpr`] — Adaptive Oversampling BPR (rank-exponential; Rendle &
//!   Freudenthaler, WSDM 2014).
//! * [`dns`] — Dynamic Negative Sampling (max-score of a uniform candidate
//!   set; Zhang et al., SIGIR 2013).
//! * [`srns`] — Simplified SRNS (score + variance memory; Ding et al.,
//!   NeurIPS 2020).
//! * [`bns`] — **the paper's Bayesian Negative Sampling**: the `unbias`
//!   posterior (Eq. 15), pluggable priors (Eq. 17 and the Table III/IV
//!   variants), λ schedules, and the min-risk sampling rule (Eq. 32).
//! * [`classifier`] — the Bayesian negative classifier of Eq. (11)–(13).
//! * [`trainer`] — Algorithm 1: the serial, bit-exact BPR training loop,
//!   restructured around the SoA [`TripleBatch`] fill/update pipeline,
//!   that wires a sampler into a
//!   [`PairwiseModel`](bns_model::PairwiseModel), with observer hooks for
//!   the quality probes.
//! * [`parallel`] — the sharded multi-core engine: hogwild SGD over
//!   user shards with per-worker RNG/sampler state and epoch-barrier
//!   statistic merges, behind a [`parallel::Determinism`] switch whose
//!   bit-exact mode is the serial engine.
//! * [`factory`] — serde-able sampler configs → boxed samplers.

pub mod aobpr;
pub mod bns;
pub mod classifier;
pub mod contrastive;
pub mod dns;
pub mod factory;
pub mod parallel;
pub mod pns;
pub mod rns;
pub mod sampler;
pub mod srns;
pub mod trainer;

pub use bns::{BnsConfig, BnsSampler, Criterion, LambdaSchedule, PosteriorStats, Prior, PriorKind};
pub use bns_model::TripleBatch;
pub use contrastive::{train_contrastive, ContrastiveConfig, ContrastiveStats};
pub use factory::{build_sampler, SamplerConfig};
pub use parallel::{Determinism, ParallelConfig, ParallelTrainer};
pub use sampler::{NegativeSampler, SampleContext, ScoreAccess};
pub use trainer::{train, NoopObserver, TrainConfig, TrainObserver, TrainStats};

/// Errors produced by samplers and the trainer.
#[derive(Debug)]
pub enum CoreError {
    /// A sampler or trainer configuration was invalid.
    InvalidConfig(String),
    /// A user has no negative items to sample from.
    NoNegatives {
        /// The offending user.
        user: u32,
    },
    /// Error propagated from the model layer.
    Model(bns_model::ModelError),
    /// Error propagated from the data layer.
    Data(bns_data::DataError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig(m) => write!(f, "invalid sampler config: {m}"),
            CoreError::NoNegatives { user } => {
                write!(
                    f,
                    "user {user} has interacted with every item; nothing to sample"
                )
            }
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<bns_model::ModelError> for CoreError {
    fn from(e: bns_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<bns_data::DataError> for CoreError {
    fn from(e: bns_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
