//! Serializable sampler configurations resolved against a dataset.
//!
//! The experiment harness describes each run (Table II's six samplers,
//! Table III's BNS variants, Table IV's oracle sweep) as data; this module
//! turns those descriptions into live sampler objects.
//!
//! ```
//! use bns_core::{build_sampler, BnsConfig, PriorKind, SamplerConfig};
//! use bns_data::{Dataset, Interactions};
//!
//! let train = Interactions::from_pairs(2, 5, &[(0, 0), (0, 1), (1, 2)])?;
//! let test = Interactions::from_pairs(2, 5, &[(0, 3), (1, 4)])?;
//! let dataset = Dataset::new("doc", train, test)?;
//!
//! // The paper's sampler with its defaults: |Mᵤ| = 5, λ = 5, Eq. 32 rule.
//! let cfg = SamplerConfig::Bns {
//!     config: BnsConfig::default(),
//!     prior: PriorKind::Popularity,
//! };
//! let sampler = build_sampler(&cfg, &dataset, None)?;
//! assert_eq!(sampler.name(), "BNS[popularity]");
//!
//! // Every Table II baseline builds from data the same way.
//! for cfg in SamplerConfig::paper_lineup() {
//!     build_sampler(&cfg, &dataset, None)?;
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::aobpr::Aobpr;
use crate::bns::prior::{
    NonInformativePrior, OccupationPrior, OraclePrior, PopularityPrior, Prior,
};
use crate::bns::{BnsConfig, BnsSampler, PriorKind};
use crate::dns::Dns;
use crate::pns::Pns;
use crate::rns::Rns;
use crate::sampler::NegativeSampler;
use crate::srns::Srns;
use crate::{CoreError, Result};
use bns_data::{Dataset, Occupations};
use serde::{Deserialize, Serialize};

/// A fully serializable description of a negative sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SamplerConfig {
    /// Uniform sampling.
    Rns,
    /// Popularity-biased sampling (`∝ r^0.75`).
    Pns,
    /// Rank-exponential oversampling with λ as a catalog fraction.
    Aobpr {
        /// λ / n_items.
        lambda_frac: f64,
    },
    /// Max-score of `m` uniform candidates.
    Dns {
        /// Candidate-set size.
        m: usize,
    },
    /// Variance-aware sampling.
    Srns {
        /// Memory size S₁.
        s1: usize,
        /// Per-draw sample size S₂.
        s2: usize,
        /// Variance weight α.
        alpha: f64,
    },
    /// Bayesian Negative Sampling with the given config and prior.
    Bns {
        /// BNS hyperparameters.
        config: BnsConfig,
        /// Prior construction.
        prior: PriorKind,
    },
}

impl SamplerConfig {
    /// The paper's six Table II entries, in presentation order.
    pub fn paper_lineup() -> Vec<SamplerConfig> {
        vec![
            SamplerConfig::Rns,
            SamplerConfig::Pns,
            SamplerConfig::Aobpr { lambda_frac: 0.05 },
            SamplerConfig::Dns { m: 5 },
            SamplerConfig::Srns {
                s1: 20,
                s2: 5,
                alpha: 1.0,
            },
            SamplerConfig::Bns {
                config: BnsConfig::default(),
                prior: PriorKind::Popularity,
            },
        ]
    }

    /// Display name matching the paper's tables.
    pub fn display_name(&self) -> &'static str {
        match self {
            SamplerConfig::Rns => "RNS",
            SamplerConfig::Pns => "PNS",
            SamplerConfig::Aobpr { .. } => "AOBPR",
            SamplerConfig::Dns { .. } => "DNS",
            SamplerConfig::Srns { .. } => "SRNS",
            SamplerConfig::Bns { .. } => "BNS",
        }
    }
}

/// Builds the prior object described by `kind` from dataset artifacts.
pub fn build_prior(
    kind: PriorKind,
    dataset: &Dataset,
    occupations: Option<&Occupations>,
) -> Result<Box<dyn Prior>> {
    match kind {
        PriorKind::Popularity => Ok(Box::new(PopularityPrior::new(dataset.popularity()))),
        PriorKind::NonInformative => Ok(Box::new(NonInformativePrior::new(dataset.n_items()))),
        PriorKind::Occupation => {
            let occ = occupations.ok_or_else(|| {
                CoreError::InvalidConfig("occupation prior requires occupation labels".into())
            })?;
            Ok(Box::new(OccupationPrior::new(
                dataset.popularity(),
                dataset.train(),
                occ.clone(),
            )))
        }
        PriorKind::Oracle { p_if_fn, p_if_tn } => Ok(Box::new(OraclePrior::new(
            dataset.test().clone(),
            p_if_fn,
            p_if_tn,
        ))),
    }
}

/// Builds a live sampler from its description.
pub fn build_sampler(
    config: &SamplerConfig,
    dataset: &Dataset,
    occupations: Option<&Occupations>,
) -> Result<Box<dyn NegativeSampler>> {
    match *config {
        SamplerConfig::Rns => Ok(Box::new(Rns)),
        SamplerConfig::Pns => Ok(Box::new(Pns::new(dataset.popularity())?)),
        SamplerConfig::Aobpr { lambda_frac } => Ok(Box::new(Aobpr::new(lambda_frac)?)),
        SamplerConfig::Dns { m } => Ok(Box::new(Dns::new(m)?)),
        SamplerConfig::Srns { s1, s2, alpha } => Ok(Box::new(Srns::new(s1, s2, alpha, 0.2)?)),
        SamplerConfig::Bns { config, prior } => {
            let prior = build_prior(prior, dataset, occupations)?;
            Ok(Box::new(BnsSampler::new(config, prior)?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bns_data::Interactions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        let train = Interactions::from_pairs(3, 6, &[(0, 0), (0, 1), (1, 2), (2, 3)]).unwrap();
        let test = Interactions::from_pairs(3, 6, &[(0, 4), (1, 5)]).unwrap();
        Dataset::new("f", train, test).unwrap()
    }

    #[test]
    fn lineup_has_six_samplers_in_paper_order() {
        let lineup = SamplerConfig::paper_lineup();
        let names: Vec<&str> = lineup.iter().map(|c| c.display_name()).collect();
        assert_eq!(names, vec!["RNS", "PNS", "AOBPR", "DNS", "SRNS", "BNS"]);
    }

    #[test]
    fn builds_every_lineup_entry() {
        let d = dataset();
        for cfg in SamplerConfig::paper_lineup() {
            let s = build_sampler(&cfg, &d, None).unwrap();
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn occupation_prior_requires_labels() {
        let d = dataset();
        let cfg = SamplerConfig::Bns {
            config: BnsConfig::default(),
            prior: PriorKind::Occupation,
        };
        assert!(build_sampler(&cfg, &d, None).is_err());
        let mut rng = StdRng::seed_from_u64(0);
        let occ = Occupations::random(3, 2, &mut rng);
        assert!(build_sampler(&cfg, &d, Some(&occ)).is_ok());
    }

    #[test]
    fn oracle_prior_reads_test_labels() {
        let d = dataset();
        let prior = build_prior(
            PriorKind::Oracle {
                p_if_fn: 0.64,
                p_if_tn: 0.04,
            },
            &d,
            None,
        )
        .unwrap();
        assert_eq!(prior.p_fn(0, 4), 0.64); // test positive
        assert_eq!(prior.p_fn(0, 3), 0.04);
    }

    #[test]
    fn invalid_nested_config_propagates() {
        let d = dataset();
        assert!(build_sampler(&SamplerConfig::Dns { m: 0 }, &d, None).is_err());
        assert!(build_sampler(&SamplerConfig::Aobpr { lambda_frac: -1.0 }, &d, None).is_err());
        assert!(build_sampler(
            &SamplerConfig::Srns {
                s1: 2,
                s2: 5,
                alpha: 1.0
            },
            &d,
            None
        )
        .is_err());
    }
}
